"""Crash safety of the epoch store, proven by seeded fault injection.

The harness first *probes* a clean save to count how often each
``persist_*`` site is consulted, then re-runs the save with a scheduled
fault at every single (site, occurrence) pair — killing it mid segment
write, before an fsync, and before each atomic rename, including the
manifest commit itself.  After every interruption the store must still
open the *previous* committed epoch bit-identically (never a torn or
mixed-epoch state), and a subsequent clean save must succeed.

The verification side is exercised the destructive way: committed
segment files are byte-flipped, truncated and deleted, and the manifest's
epoch tags are tampered with — each must fail the load with an explicit
``SnapshotCorrupt`` / ``SnapshotTorn`` naming the bad segment, never
return wrong results.

``FAULT_SEED`` (env var, default 0) reseeds the injectors, mirroring the
chaos-bench convention; the scheduled ``at`` faults fire regardless of
the seed, so every boundary is covered in every run.
"""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest

from repro.core.config import RXConfig, UpdatePolicy
from repro.core.rx_index import RXIndex
from repro.persist import SnapshotCorrupt, SnapshotTorn, load_snapshot
from repro.persist.segments import TMP_PREFIX
from repro.rtx.bvh import bvh_arrays_diff
from repro.serve import FaultInjector, FaultSpec, InjectedFault

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

#: the write-path durability boundaries (the read-path site is separate)
WRITE_SITES = ("persist_write", "persist_fsync", "persist_rename")


def _make_index(num_keys=1024, seed=7):
    rng = np.random.default_rng([seed, FAULT_SEED])
    keys = rng.integers(0, 1 << 18, size=num_keys, dtype=np.uint64)
    index = RXIndex()
    index.build(keys)
    return index, keys


def _point_probe(index, keys, seed=11):
    rng = np.random.default_rng([seed, FAULT_SEED])
    queries = rng.choice(keys, size=64)
    run = index.point_lookup(queries)
    return queries, run.result_rows.copy(), run.hits_per_lookup.copy()


class TestInterruptedSaves:
    def test_first_save_interruption_leaves_no_snapshot(self, tmp_path):
        index, _ = _make_index()
        injector = FaultInjector(
            seed=FAULT_SEED, specs={"persist_write": FaultSpec(at={0})}
        )
        with pytest.raises(InjectedFault):
            index.save(tmp_path, fault_injector=injector)
        with pytest.raises(SnapshotTorn, match="no committed snapshot"):
            RXIndex.load(tmp_path)
        # The wreckage does not poison a later clean save.
        index.save(tmp_path)
        assert not list(tmp_path.rglob(f"{TMP_PREFIX}*"))
        RXIndex.load(tmp_path)

    def test_every_boundary_preserves_the_committed_epoch(self, tmp_path):
        """Kill the save of epoch B at every (site, occurrence); epoch A
        must survive bit-identically every single time."""
        index, keys = _make_index()
        base = tmp_path / "base"
        index.save(base)
        golden = RXIndex.load(base)
        queries, golden_rows, golden_counts = _point_probe(golden, keys)

        # Move the index to state B (epoch bumped, different column).
        new_keys = keys.copy()
        new_keys[: len(new_keys) // 8] += 1
        index.update(new_keys)

        # Probe: how often does a clean save of B consult each site?
        probe_dir = tmp_path / "probe"
        shutil.copytree(base, probe_dir)
        probe = FaultInjector(seed=FAULT_SEED)
        index.save(probe_dir, fault_injector=probe)
        schedule = [
            (site, occurrence)
            for site in WRITE_SITES
            for occurrence in range(probe.occurrences[site])
        ]
        assert len(schedule) >= 6, "expected several durability boundaries"

        for trial, (site, occurrence) in enumerate(schedule):
            store = tmp_path / f"trial-{trial}"
            shutil.copytree(base, store)
            injector = FaultInjector(
                seed=FAULT_SEED, specs={site: FaultSpec(at={occurrence})}
            )
            with pytest.raises(InjectedFault) as excinfo:
                index.save(store, fault_injector=injector)
            assert excinfo.value.site == site

            survivor = RXIndex.load(store)
            label = f"{site}@{occurrence}"
            assert survivor.epoch == golden.epoch, label
            assert np.array_equal(survivor.keys, golden.keys), label
            assert bvh_arrays_diff(survivor.accel.bvh, golden.accel.bvh) is None, label
            rows = survivor.point_lookup(queries)
            assert np.array_equal(rows.result_rows, golden_rows), label
            assert np.array_equal(rows.hits_per_lookup, golden_counts), label

            # A clean retry fully publishes epoch B and garbage-collects
            # the interrupted save's temp files (loads are read-only).
            index.save(store)
            assert not list(store.rglob(f"{TMP_PREFIX}*")), label
            retried = RXIndex.load(store)
            assert bvh_arrays_diff(retried.accel.bvh, index.accel.bvh) is None, label

    def test_segments_published_before_the_crash_are_not_adopted(self, tmp_path):
        """A save that dies *after* renaming some segments but before the
        manifest commit must not leak those segments into a load."""
        index, keys = _make_index()
        index.save(tmp_path)
        before = load_snapshot(tmp_path)

        new_keys = keys.copy()
        new_keys[0] += 1
        index.update(new_keys)
        injector = FaultInjector(
            seed=FAULT_SEED,
            # The last rename is the manifest commit: every segment landed.
            specs={"persist_rename": FaultSpec(at={1})},
        )
        with pytest.raises(InjectedFault):
            index.save(tmp_path, fault_injector=injector)
        after = load_snapshot(tmp_path)
        assert after.manifest_version == before.manifest_version
        assert after.epoch == before.epoch
        assert np.array_equal(
            after.arrays("columns")["keys"], before.arrays("columns")["keys"]
        )

    def test_fresh_process_resave_never_clobbers_committed_epoch(self, tmp_path):
        """A new process restarts its in-memory epoch counter at zero, so a
        freshly built index saves with the same epoch number the store
        already committed.  The save must land in a *new* epoch directory —
        killed at any boundary, the committed snapshot survives untouched."""
        index_a, keys_a = _make_index(seed=7)
        base = tmp_path / "base"
        index_a.save(base)
        golden = RXIndex.load(base)
        queries, golden_rows, golden_counts = _point_probe(golden, keys_a)
        committed_files = {
            p: p.read_bytes() for p in sorted(base.rglob("*.seg"))
        }

        # "After a restart": a different index whose epoch counter collides
        # with the committed epoch.
        index_b, _ = _make_index(num_keys=768, seed=23)
        assert index_b.epoch == golden.epoch, "test needs the collision"

        probe_dir = tmp_path / "probe"
        shutil.copytree(base, probe_dir)
        probe = FaultInjector(seed=FAULT_SEED)
        index_b.save(probe_dir, fault_injector=probe)
        schedule = [
            (site, occurrence)
            for site in WRITE_SITES
            for occurrence in range(probe.occurrences[site])
        ]
        assert len(schedule) >= 6

        for trial, (site, occurrence) in enumerate(schedule):
            store = tmp_path / f"collision-{trial}"
            shutil.copytree(base, store)
            injector = FaultInjector(
                seed=FAULT_SEED, specs={site: FaultSpec(at={occurrence})}
            )
            with pytest.raises(InjectedFault):
                index_b.save(store, fault_injector=injector)
            label = f"{site}@{occurrence}"
            # Every committed segment file is byte-identical wreckage-proof:
            # the interrupted save never renamed over a referenced path.
            for path, blob in committed_files.items():
                relocated = store / path.relative_to(base)
                assert relocated.read_bytes() == blob, label
            survivor = RXIndex.load(store)
            assert survivor.epoch == golden.epoch, label
            rows = survivor.point_lookup(queries)
            assert np.array_equal(rows.result_rows, golden_rows), label
            assert np.array_equal(rows.hits_per_lookup, golden_counts), label

        # A completed save publishes B under a strictly newer epoch.
        done = tmp_path / "collision-done"
        shutil.copytree(base, done)
        result = index_b.save(done)
        assert result["epoch"] > golden.epoch
        reloaded = RXIndex.load(done)
        assert np.array_equal(reloaded.keys, index_b.keys)


class TestVerifiedLoads:
    def test_byte_flip_names_the_corrupt_segment(self, tmp_path):
        index, _ = _make_index()
        index.save(tmp_path)
        manifest_entries = load_snapshot(tmp_path)  # also proves it loads clean
        assert manifest_entries.segments_total >= 2
        for name in sorted(manifest_entries.segments):
            seg_files = sorted(tmp_path.rglob(f"{name}.seg"))
            assert seg_files, name
            target = seg_files[0]
            blob = bytearray(target.read_bytes())
            flip = len(blob) // 2
            blob[flip] ^= 0x40
            target.write_bytes(bytes(blob))
            with pytest.raises(SnapshotCorrupt, match="checksum") as excinfo:
                RXIndex.load(tmp_path)
            assert excinfo.value.segment == target.name
            blob[flip] ^= 0x40  # restore for the next segment's turn
            target.write_bytes(bytes(blob))
        RXIndex.load(tmp_path)

    def test_truncated_segment_is_torn(self, tmp_path):
        index, _ = _make_index()
        index.save(tmp_path)
        target = sorted(tmp_path.rglob("columns.seg"))[0]
        data = target.read_bytes()
        target.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotTorn, match="truncated") as excinfo:
            RXIndex.load(tmp_path)
        assert excinfo.value.segment == "columns.seg"

    def test_missing_segment_is_torn(self, tmp_path):
        index, _ = _make_index()
        index.save(tmp_path)
        sorted(tmp_path.rglob("bvh.seg"))[0].unlink()
        with pytest.raises(SnapshotTorn, match="missing") as excinfo:
            RXIndex.load(tmp_path)
        assert excinfo.value.segment == "bvh.seg"

    def test_mixed_epoch_manifest_is_torn(self, tmp_path):
        import json

        index, _ = _make_index()
        index.save(tmp_path)
        manifest_path = tmp_path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        name = sorted(manifest["segments"])[0]
        manifest["segments"][name]["epoch"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotTorn, match="mixed-epoch"):
            RXIndex.load(tmp_path)

    def test_injected_read_corruption(self, tmp_path):
        index, _ = _make_index()
        index.save(tmp_path)
        injector = FaultInjector(
            seed=FAULT_SEED, specs={"persist_read_corrupt": FaultSpec(at={0})}
        )
        with pytest.raises(SnapshotCorrupt, match="checksum"):
            RXIndex.load(tmp_path, fault_injector=injector)

    def test_orphan_temp_files_are_collected_by_saves_not_loads(self, tmp_path):
        index, _ = _make_index()
        index.save(tmp_path)
        orphan = tmp_path / f"{TMP_PREFIX}stale.seg"
        orphan.write_bytes(b"half a segment")
        # A load is strictly read-only: it must not unlink what could be a
        # concurrent writer's in-flight temp file.
        RXIndex.load(tmp_path)
        assert orphan.exists()
        # The next save (the store is single-writer) collects it.
        index.save(tmp_path)
        assert not orphan.exists()


class TestIncrementalSaves:
    def test_delta_update_save_rewrites_only_dirty_shards(self, tmp_path):
        rng = np.random.default_rng([3, FAULT_SEED])
        keys = rng.integers(0, 1 << 18, size=4096, dtype=np.uint64)
        config = RXConfig.paper_default()
        config.compaction = False
        config.allow_updates = True
        config.shard_bits = 4
        config.update_policy = UpdatePolicy.DELTA_SHARD
        index = RXIndex(config)
        index.build(keys)
        shards = index.accel.forest.non_empty_shards
        assert shards >= 3, "test needs a multi-shard forest"
        first = index.save(tmp_path)
        assert first["segments_total"] == shards + 1  # + the columns segment

        new_keys = keys.copy()
        new_keys[0] += 1  # dirties exactly the shard holding row 0
        outcome = index.update(new_keys)
        dirty = outcome.stats["dirty_shards"]
        assert dirty < shards

        second = index.save(tmp_path)
        # Dirty shards + the key column are rewritten; everything else is
        # referenced from the previous epoch's immutable files.
        assert second["segments_rewritten"] == dirty + 1
        assert second["segments_reused"] == (shards - dirty)
        assert second["epoch"] > first["epoch"]

        reloaded = RXIndex.load(tmp_path)
        assert bvh_arrays_diff(reloaded.accel.bvh, index.accel.bvh) is None

    def test_noop_resave_reuses_everything(self, tmp_path):
        index, _ = _make_index(num_keys=512)
        index.save(tmp_path)
        again = index.save(tmp_path)
        assert again["segments_rewritten"] == 0
        assert again["segments_reused"] == again["segments_total"]

    def test_crc_collision_alone_never_reuses_a_changed_segment(
        self, tmp_path, monkeypatch
    ):
        """CRC32C is a corruption detector, not a content identity: when a
        changed payload collides with the committed entry's CRC (forced
        here by stubbing the CRC to a constant), the second independent
        digest must still force the rewrite — never silently persist stale
        data."""
        from repro.persist import store as store_mod

        monkeypatch.setattr(store_mod, "payload_crc", lambda arrays: 0)
        index, keys = _make_index(num_keys=512)
        index.save(tmp_path)

        new_keys = keys.copy()
        new_keys[0] += 1
        index.update(new_keys)
        result = index.save(tmp_path)
        assert result["segments_rewritten"] >= 1
        reloaded = RXIndex.load(tmp_path)
        assert np.array_equal(reloaded.keys, index.keys)


class TestServiceRestart:
    def test_checkpoint_restore_retires_pinned_pages(self, tmp_path):
        from repro.serve import IndexService

        index, keys = _make_index()
        service = IndexService(index)
        lo = np.array([0], dtype=np.uint64)
        hi = np.array([1 << 17], dtype=np.uint64)
        service.submit_range(lo, hi, limit=8, order="key")
        page = service.drain()[0]
        assert page.next_cursor is not None

        service.checkpoint(tmp_path)
        pre_epoch = index.epoch
        service.restore(tmp_path)
        assert index.epoch > pre_epoch

        # A resume pinned to the pre-restore epoch fails explicitly...
        service.submit_range(
            lo, hi, limit=8, order="key",
            cursor=page.next_cursor, pin_epoch=page.epoch,
        )
        retired = service.drain()[0]
        assert retired.reason == "epoch_retired"

        # ...while a fresh scan serves bit-identically to the saved state.
        service.submit_range(lo, hi, limit=8, order="key")
        fresh = service.drain()[0]
        assert np.array_equal(fresh.hits.prim_indices, page.hits.prim_indices)

    def test_checkpoint_under_injected_faults_never_tears(self, tmp_path):
        from repro.serve import IndexService

        index, keys = _make_index()
        injector = FaultInjector(
            seed=FAULT_SEED,
            specs={"persist_rename": FaultSpec(probability=0.4)},
        )
        service = IndexService(index, fault_injector=injector)
        committed = 0
        expected_epoch = None
        expected_keys = None
        for round_index in range(6):
            new_keys = keys.copy()
            new_keys[: round_index + 1] += np.uint64(round_index + 1)
            index.update(new_keys)
            try:
                service.checkpoint(tmp_path)
                committed += 1
                expected_epoch = index.epoch
                expected_keys = index.keys.copy()
            except InjectedFault:
                pass
            if committed:
                # Whatever the fault pattern, the store always opens the
                # last epoch whose manifest commit actually landed — the
                # column state captured at that checkpoint, never a newer
                # or torn one.
                survivor = RXIndex.load(tmp_path)
                assert survivor.epoch == expected_epoch
                assert np.array_equal(survivor.keys, expected_keys)
        assert injector.fired["persist_rename"] >= 1
        assert committed >= 1
