"""Tests for the traditional GPU index baselines (HT, B+, SA, LSM)."""

import numpy as np
import pytest

from repro.baselines import (
    GpuBPlusTree,
    GpuLsmTree,
    MISS_SENTINEL,
    SortedArrayIndex,
    WarpCoreHashTable,
)
from repro.workloads import dense_shuffled_keys, point_lookups
from repro.workloads.table import SecondaryIndexWorkload

ALL_BASELINES = [WarpCoreHashTable, GpuBPlusTree, SortedArrayIndex, GpuLsmTree]


@pytest.mark.parametrize("index_class", ALL_BASELINES)
class TestCommonBehaviour:
    def test_point_lookups_match_reference(self, index_class, small_workload):
        index = index_class()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        assert run.aggregate == small_workload.reference_point_aggregate()
        assert np.array_equal(run.hits_per_lookup, small_workload.reference_point_hits())

    def test_misses_marked(self, index_class, small_keys):
        index = index_class()
        index.build(small_keys)
        run = index.point_lookup(np.array([10**9], dtype=np.uint64))
        assert run.result_rows[0] == MISS_SENTINEL
        assert run.hit_rate == 0.0

    def test_lookup_before_build_fails(self, index_class):
        with pytest.raises(RuntimeError):
            index_class().point_lookup(np.array([1], dtype=np.uint64))

    def test_memory_footprint_positive_and_scales(self, index_class, small_keys):
        index = index_class()
        index.build(small_keys)
        footprint = index.memory_footprint()
        scaled = index.memory_footprint(target_keys=2**26)
        assert footprint.final_bytes > 0
        assert scaled.final_bytes > footprint.final_bytes

    def test_build_profiles_nonempty(self, index_class, small_keys):
        index = index_class()
        index.build(small_keys)
        profiles = index.build_profiles(target_keys=2**26)
        assert profiles
        assert all(p.bytes_accessed > 0 for p in profiles)

    def test_lookup_profile_threads_scale(self, index_class, small_workload):
        index = index_class()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        profile = index.lookup_profile(run, target_keys=2**26, target_lookups=2**27)
        assert profile.threads == 2**27
        assert profile.bytes_accessed > 0


class TestRangeLookups:
    @pytest.mark.parametrize("index_class", [GpuBPlusTree, SortedArrayIndex, GpuLsmTree])
    def test_ranges_match_reference(self, index_class, small_workload):
        index = index_class()
        index.build(small_workload.keys, small_workload.values)
        run = index.range_lookup(small_workload.range_lowers, small_workload.range_uppers)
        assert run.aggregate == small_workload.reference_range_aggregate()
        assert np.array_equal(run.hits_per_lookup, small_workload.reference_range_hits())

    def test_hashtable_rejects_ranges(self, small_keys):
        index = WarpCoreHashTable()
        index.build(small_keys)
        assert index.supports_range_lookups is False
        with pytest.raises(NotImplementedError):
            index.range_lookup(np.array([1], dtype=np.uint64), np.array([2], dtype=np.uint64))

    @pytest.mark.parametrize("index_class", [GpuBPlusTree, SortedArrayIndex])
    def test_mismatched_bounds_rejected(self, index_class, small_keys):
        index = index_class()
        index.build(small_keys)
        with pytest.raises(ValueError):
            index.range_lookup(np.array([1], dtype=np.uint64), np.array([2, 3], dtype=np.uint64))

    @pytest.mark.parametrize("index_class", [GpuBPlusTree, SortedArrayIndex, GpuLsmTree])
    def test_limited_ranges_cap_every_lookup(self, index_class, small_workload):
        # LIMIT-k pushdown: the probe stops after `limit` qualifying rows, so
        # the per-lookup counts are the capped reference counts and the
        # aggregate covers exactly the returned rows.
        index = index_class()
        index.build(small_workload.keys, small_workload.values)
        full = small_workload.reference_range_hits()
        lowers, uppers = small_workload.range_lowers, small_workload.range_uppers
        for limit in (1, 3, 100):
            run = index.range_lookup(lowers, uppers, limit=limit)
            assert np.array_equal(run.hits_per_lookup, np.minimum(full, limit))
            assert run.stats["range_limit"] == limit
        unlimited = index.range_lookup(lowers, uppers)
        assert "range_limit" not in unlimited.stats
        assert np.array_equal(unlimited.hits_per_lookup, full)

    @pytest.mark.parametrize("index_class", [GpuBPlusTree, SortedArrayIndex, GpuLsmTree])
    def test_limited_scan_stats_reflect_the_cap(self, index_class, small_workload):
        # The structural stats feed the cost model: a capped scan must not
        # charge for entries it never touched.
        index = index_class()
        index.build(small_workload.keys, small_workload.values)
        lowers, uppers = small_workload.range_lowers, small_workload.range_uppers
        capped = index.range_lookup(lowers, uppers, limit=1)
        unlimited = index.range_lookup(lowers, uppers)
        scanned_key = (
            "leaf_entries_scanned" if index_class is GpuBPlusTree else "entries_scanned"
        )
        if index_class is GpuLsmTree:
            assert capped.total_hits < unlimited.total_hits
        else:
            assert capped.stats[scanned_key] < unlimited.stats[scanned_key]

    @pytest.mark.parametrize("index_class", [GpuBPlusTree, SortedArrayIndex, GpuLsmTree])
    def test_invalid_limit_rejected(self, index_class, small_keys):
        index = index_class()
        index.build(small_keys)
        with pytest.raises(ValueError, match="at least 1"):
            index.range_lookup(
                np.array([1], dtype=np.uint64), np.array([5], dtype=np.uint64), limit=0
            )

    def test_lsm_budget_drains_newest_levels_first(self):
        # Keys 0..63 split across several runs; a capped range lookup must
        # take its rows from the runs in probe order (newest first) and stop.
        keys = np.arange(64, dtype=np.uint64)
        index = GpuLsmTree(level_ratio=2)
        index.build(keys)
        assert index.num_levels > 1
        lowers = np.array([0], dtype=np.uint64)
        uppers = np.array([63], dtype=np.uint64)
        capped = index.range_lookup(lowers, uppers, limit=5)
        assert capped.hits_per_lookup.tolist() == [5]
        # The first level alone holds fewer than 64 keys, so an uncapped
        # lookup keeps scanning into older runs; the capped one stops once
        # its budget is spent.
        unlimited = index.range_lookup(lowers, uppers)
        assert unlimited.hits_per_lookup.tolist() == [64]


class TestHashTableSpecifics:
    def test_load_factor_respected(self, small_keys):
        index = WarpCoreHashTable(load_factor=0.8)
        result = index.build(small_keys)
        assert result.stats["achieved_load_factor"] <= 0.8 + 1e-6

    def test_duplicates_supported(self):
        keys = np.array([3, 3, 3, 8], dtype=np.uint64)
        index = WarpCoreHashTable()
        index.build(keys)
        run = index.point_lookup(np.array([3], dtype=np.uint64))
        assert run.hits_per_lookup[0] == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WarpCoreHashTable(load_factor=0.99)
        with pytest.raises(ValueError):
            WarpCoreHashTable(group_size=0)

    def test_higher_load_factor_lengthens_miss_probes(self):
        # Open addressing: the fuller the table, the longer a miss has to
        # probe before it reaches a group with an empty slot.
        keys = dense_shuffled_keys(2048, seed=5)
        misses = np.arange(10_000, 10_512, dtype=np.uint64)
        dense = WarpCoreHashTable(load_factor=0.9)
        dense.build(keys)
        sparse = WarpCoreHashTable(load_factor=0.5)
        sparse.build(keys)
        assert (
            dense.point_lookup(misses).stats["avg_probe_groups"]
            >= sparse.point_lookup(misses).stats["avg_probe_groups"]
        )

    def test_memory_has_no_build_overhead(self, small_keys):
        index = WarpCoreHashTable()
        index.build(small_keys)
        assert index.memory_footprint().build_overhead_bytes == 0


class TestBPlusTreeSpecifics:
    @pytest.mark.parametrize("n", [5, 16, 17, 255, 1024, 5000])
    def test_descend_matches_leaf_searchsorted(self, n):
        """The batched level-by-level descent is pinned to a plain
        searchsorted on the leaf level (the two are equivalent for the
        implicit bulk-loaded tree)."""
        rng = np.random.default_rng(n)
        keys = np.unique(rng.integers(0, 2**32 - 1, size=2 * n).astype(np.uint64))[:n]
        tree = GpuBPlusTree()
        tree.build(keys)
        queries = np.concatenate(
            [
                keys[rng.integers(0, keys.shape[0], size=200)],
                rng.integers(0, 2**32 - 1, size=200).astype(np.uint64),
                # Domain edges, including the maximum uint64: a query equal
                # to the window padding value must not miscount separators.
                np.array([0, 2**32 - 1, 2**64 - 1], dtype=np.uint64),
            ]
        )
        assert np.array_equal(
            tree._descend(queries),
            np.searchsorted(tree._sorted_keys, queries, side="left"),
        )

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            GpuBPlusTree().build(np.array([1, 1], dtype=np.uint64))

    def test_64_bit_keys_rejected(self):
        with pytest.raises(ValueError):
            GpuBPlusTree().build(np.array([2**40], dtype=np.uint64))
        with pytest.raises(ValueError):
            GpuBPlusTree(key_bytes=8)

    def test_height_grows_with_keys(self):
        small = GpuBPlusTree()
        small.build(dense_shuffled_keys(64, seed=1))
        large = GpuBPlusTree()
        large.build(dense_shuffled_keys(4096, seed=1))
        assert large.height > small.height

    def test_range_stats_report_leaf_scans(self, small_workload):
        index = GpuBPlusTree()
        index.build(small_workload.keys, small_workload.values)
        run = index.range_lookup(small_workload.range_lowers, small_workload.range_uppers)
        assert run.stats["leaf_entries_scanned"] > 0

    def test_build_overhead_from_sort(self, small_keys):
        index = GpuBPlusTree()
        index.build(small_keys)
        assert index.memory_footprint().build_overhead_bytes > 0


class TestSortedArraySpecifics:
    def test_zero_structural_overhead(self, small_keys):
        index = SortedArrayIndex()
        index.build(small_keys)
        footprint = index.memory_footprint(target_keys=2**26)
        assert footprint.final_bytes == 2**26 * 8

    def test_binary_search_depth_scales(self):
        shallow = SortedArrayIndex()
        shallow.build(dense_shuffled_keys(64, seed=2))
        deep = SortedArrayIndex()
        deep.build(dense_shuffled_keys(4096, seed=2))
        assert deep.point_lookup(np.array([1], dtype=np.uint64)).stats["binary_search_depth"] > \
            shallow.point_lookup(np.array([1], dtype=np.uint64)).stats["binary_search_depth"]

    def test_serial_depth_in_profile(self, small_workload):
        index = SortedArrayIndex()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        profile = index.lookup_profile(run, target_keys=2**26, target_lookups=2**27)
        assert profile.serial_depth >= 20  # ~log2(2^26)

    def test_invalid_key_bytes(self):
        with pytest.raises(ValueError):
            SortedArrayIndex(key_bytes=3)


class TestLsmSpecifics:
    def test_multiple_levels_created(self):
        index = GpuLsmTree(level_ratio=4)
        index.build(dense_shuffled_keys(4096, seed=3))
        assert index.num_levels > 1

    def test_level_ratio_validation(self):
        with pytest.raises(ValueError):
            GpuLsmTree(level_ratio=1)

    def test_lsm_slower_than_btree_per_profile(self, small_workload):
        # The paper picked the B+-Tree because it answers lookups faster than
        # the GPU LSM; our profiles must preserve that ordering.
        lsm = GpuLsmTree()
        btree = GpuBPlusTree()
        lsm.build(small_workload.keys, small_workload.values)
        btree.build(small_workload.keys, small_workload.values)
        lsm_profile = lsm.lookup_profile(
            lsm.point_lookup(small_workload.point_queries), target_keys=2**26, target_lookups=2**27
        )
        btree_profile = btree.lookup_profile(
            btree.point_lookup(small_workload.point_queries), target_keys=2**26, target_lookups=2**27
        )
        assert lsm_profile.serial_depth > btree_profile.serial_depth
