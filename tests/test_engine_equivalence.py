"""Golden-equivalence harness for the level-synchronous engine.

The vectorised builder, traversal, refit and hash-table build replaced
per-item Python loops.  These tests pin their observable behaviour to the
seed implementations preserved verbatim in :mod:`repro.rtx._reference`:

* BVH builds must emit *bit-identical* trees — node numbering, bounds,
  ``prim_indices`` permutation — for all three builders across regular,
  random, duplicate-heavy and pathologically skewed workloads;
* ``TraversalEngine.trace`` must produce identical hit records and
  identical counters (including the schedule counters ``traversal_rounds``
  and ``max_frontier_size``) for every primitive type and for any
  ``max_frontier`` chunking;
* the refit pass must produce bit-identical refitted bounds;
* the hash-table bulk build must match the sequential insert loop's probe
  statistics, per-group occupancy and lookup results.
"""

import numpy as np
import pytest

from repro.baselines.hashtable import _EMPTY, MISS_SENTINEL, WarpCoreHashTable, _mix_hash
from repro.core.results import collect_row_ids
from repro.rtx._reference import (
    reference_aabb_intersect_pairs,
    reference_build_bvh,
    reference_hashtable_insert,
    reference_refit_bounds,
    reference_sphere_intersect_pairs,
    reference_trace,
    reference_triangle_intersect_pairs,
)
from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.refit import refit_accel
from repro.rtx.traversal import HitRecords, TraversalEngine

BUILDERS = ["lbvh", "median", "sah"]
PRIMITIVES = ["triangle", "sphere", "aabb"]


def _workloads(rng):
    n = 300
    return {
        "line": np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)]),
        "cloud": rng.uniform(0, 1000, size=(n, 3)),
        "duplicates": np.repeat(rng.uniform(0, 10, size=(15, 3)), 20, axis=0),
        "skewed": np.column_stack(
            [rng.uniform(0, 1e12, n), rng.uniform(0, 1, n), np.zeros(n)]
        ),
    }


def _assert_same_tree(built, golden):
    assert np.array_equal(built.left, golden.left)
    assert np.array_equal(built.right, golden.right)
    assert np.array_equal(built.first_prim, golden.first_prim)
    assert np.array_equal(built.prim_count, golden.prim_count)
    assert np.array_equal(built.prim_indices, golden.prim_indices)
    assert np.array_equal(built.node_mins, golden.node_mins)
    assert np.array_equal(built.node_maxs, golden.node_maxs)


@pytest.mark.parametrize("builder", BUILDERS)
class TestBuilderEquivalence:
    def test_trees_bit_identical(self, builder):
        rng = np.random.default_rng(42)
        for name, points in _workloads(rng).items():
            for max_leaf_size in (1, 4):
                buffer = TriangleBuffer(make_triangle_vertices(points))
                options = BvhBuildOptions(builder=builder, max_leaf_size=max_leaf_size)
                _assert_same_tree(
                    build_bvh(buffer, options), reference_build_bvh(buffer, options)
                )

    def test_trees_identical_across_primitive_types(self, builder):
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 500, size=(200, 3))
        for primitive in PRIMITIVES:
            buffer = build_input_for_points(primitive, points).primitive_buffer()
            options = BvhBuildOptions(builder=builder)
            _assert_same_tree(
                build_bvh(buffer, options), reference_build_bvh(buffer, options)
            )

    def test_depth_and_leaves_match_reference(self, builder):
        rng = np.random.default_rng(3)
        buffer = TriangleBuffer(
            make_triangle_vertices(rng.uniform(0, 100, size=(257, 3)))
        )
        options = BvhBuildOptions(builder=builder)
        built = build_bvh(buffer, options)
        golden = reference_build_bvh(buffer, options)
        assert built.depth() == _reference_depth(golden)
        assert built.leaf_count == golden.leaf_count


def _reference_depth(bvh) -> int:
    """The seed per-node stack depth computation."""
    max_depth = 0
    stack = [(0, 0)]
    while stack:
        node, d = stack.pop()
        max_depth = max(max_depth, d)
        if bvh.left[node] >= 0:
            stack.append((int(bvh.left[node]), d + 1))
            stack.append((int(bvh.right[node]), d + 1))
    return max_depth


@pytest.mark.parametrize("primitive", PRIMITIVES)
@pytest.mark.parametrize("max_frontier", [None, 64])
class TestTraversalEquivalence:
    def _engine_and_rays(self, primitive, rng):
        n = 512
        points = np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])
        buffer = build_input_for_points(primitive, points).primitive_buffer()
        bvh = build_bvh(buffer)
        xs = rng.uniform(-10, n + 10, size=400)
        origins = np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)])
        directions = np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1))
        point_rays = RayBatch(
            origins=origins, directions=directions, tmin=0.0, tmax=1.0
        )
        lows = rng.uniform(0, n - 30, size=100)
        range_rays = RayBatch(
            origins=np.column_stack([lows, np.zeros(100), np.zeros(100)]),
            directions=np.tile([1.0, 0.0, 0.0], (100, 1)),
            tmin=0.0,
            tmax=rng.uniform(1, 25, size=100),
        )
        diag = RayBatch(
            origins=rng.uniform(-5, n + 5, size=(200, 3)),
            directions=rng.uniform(-1, 1, size=(200, 3)),
            tmin=0.0,
            tmax=20.0,
        )
        return bvh, buffer, [point_rays, range_rays, diag]

    def test_hits_and_counters_identical(self, primitive, max_frontier):
        rng = np.random.default_rng(17)
        bvh, buffer, batches = self._engine_and_rays(primitive, rng)
        engine = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        for rays in batches:
            engine.reset_counters()
            hits = engine.trace(rays)
            golden_hits, golden_counters = reference_trace(bvh, buffer, rays)
            assert np.array_equal(hits.ray_indices, golden_hits.ray_indices)
            assert np.array_equal(hits.prim_indices, golden_hits.prim_indices)
            assert np.array_equal(hits.lookup_ids, golden_hits.lookup_ids)
            assert engine.counters.as_dict() == golden_counters.as_dict()

    def test_any_hit_filter_identical(self, primitive, max_frontier):
        rng = np.random.default_rng(23)
        bvh, buffer, batches = self._engine_and_rays(primitive, rng)
        engine = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        keep_even = lambda r, p, l: (p % 2 == 0)
        hits = engine.trace(batches[1], any_hit=keep_even)
        golden_hits, _ = reference_trace(bvh, buffer, batches[1], any_hit=keep_even)
        assert np.array_equal(hits.prim_indices, golden_hits.prim_indices)

    def test_tmin_cull_mode_identical(self, primitive, max_frontier):
        rng = np.random.default_rng(29)
        bvh, buffer, _ = self._engine_and_rays(primitive, rng)
        rays = RayBatch(
            origins=np.zeros((40, 3)),
            directions=np.tile([1.0, 0.0, 0.0], (40, 1)),
            tmin=rng.uniform(0, 500, size=40),
            tmax=512.0,
        )
        for cull in (False, True):
            engine = TraversalEngine(
                bvh, buffer, node_cull_respects_tmin=cull, max_frontier=max_frontier
            )
            hits = engine.trace(rays)
            golden_hits, golden_counters = reference_trace(
                bvh, buffer, rays, node_cull_respects_tmin=cull
            )
            assert np.array_equal(hits.prim_indices, golden_hits.prim_indices)
            assert engine.counters.as_dict() == golden_counters.as_dict()


class TestIntersectPairsEquivalence:
    """The SoA intersection packs must reproduce the seed's per-call
    gather-and-recompute intersectors bit for bit."""

    def _pair_workload(self, rng, n=700, m=4000):
        points = rng.uniform(0, 500, size=(n, 3))
        g = rng.integers(0, n, size=m)
        # Mix of aimed rays (high hit rate), axis-parallel rays (the paper's
        # workloads), degenerate zero-direction rays, and random misses.
        target = points[g] + rng.uniform(-0.6, 0.6, size=(m, 3))
        o = target + rng.uniform(-3.0, 3.0, size=(m, 3))
        d = target - o
        d[: m // 8, 1:] = 0.0       # parallel to y/z
        d[m // 8 : m // 6] = 0.0    # fully degenerate
        o[m // 6 : m // 4] = rng.uniform(-100, 600, size=(m // 4 - m // 6, 3))
        tmins = rng.uniform(0, 1.0, size=m)
        tmaxs = tmins + rng.uniform(0, 4.0, size=m)
        return points, o, d, tmins, tmaxs, g

    def test_triangle_masks_bit_identical(self):
        rng = np.random.default_rng(61)
        points, o, d, tmins, tmaxs, g = self._pair_workload(rng)
        buffer = build_input_for_points("triangle", points).primitive_buffer()
        got = buffer.intersect_pairs(o, d, tmins, tmaxs, g)
        want = reference_triangle_intersect_pairs(
            buffer.vertices.astype(np.float64), o, d, tmins, tmaxs, g
        )
        assert got.sum() > 0  # the workload must exercise the hit branches
        assert np.array_equal(got, want)

    def test_sphere_masks_bit_identical(self):
        rng = np.random.default_rng(62)
        points, o, d, tmins, tmaxs, g = self._pair_workload(rng)
        buffer = build_input_for_points("sphere", points).primitive_buffer()
        got = buffer.intersect_pairs(o, d, tmins, tmaxs, g)
        want = reference_sphere_intersect_pairs(
            buffer.centers, buffer.radius, o, d, tmins, tmaxs, g
        )
        assert got.sum() > 0
        assert np.array_equal(got, want)

    def test_aabb_masks_bit_identical(self):
        rng = np.random.default_rng(63)
        points, o, d, tmins, tmaxs, g = self._pair_workload(rng)
        buffer = build_input_for_points("aabb", points).primitive_buffer()
        got = buffer.intersect_pairs(o, d, tmins, tmaxs, g)
        want = reference_aabb_intersect_pairs(
            buffer.mins, buffer.maxs, o, d, tmins, tmaxs, g
        )
        assert got.sum() > 0
        assert np.array_equal(got, want)

    def test_empty_pair_batch(self):
        rng = np.random.default_rng(64)
        points = rng.uniform(0, 10, size=(5, 3))
        for primitive in PRIMITIVES:
            buffer = build_input_for_points(primitive, points).primitive_buffer()
            empty = np.zeros(0, dtype=np.int64)
            mask = buffer.intersect_pairs(
                np.zeros((0, 3)), np.zeros((0, 3)), np.zeros(0), np.zeros(0), empty
            )
            assert mask.shape == (0,) and mask.dtype == bool


class TestAnyHitModeEquivalence:
    """``mode="any_hit"`` must report exactly the default mode's first
    surviving hit per ray and never do more traversal work."""

    def _setup(self, primitive, rng):
        gaps = rng.integers(1, 9, size=600)
        xs = np.cumsum(gaps).astype(np.float64)
        points = np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])
        buffer = build_input_for_points(primitive, points).primitive_buffer()
        bvh = build_bvh(buffer)
        picks = rng.integers(0, xs.shape[0], size=300)
        k = xs[picks]
        # From-zero parallel point rays: the worst case the any-hit
        # termination exists for (they overlap every preceding key).
        rays = RayBatch(
            origins=np.zeros((k.shape[0], 3)),
            directions=np.tile([1.0, 0.0, 0.0], (k.shape[0], 1)),
            tmin=k - 0.5,
            tmax=k + 0.5,
        )
        return bvh, buffer, rays

    @staticmethod
    def _first_hits(hits: HitRecords) -> dict[int, int]:
        first: dict[int, int] = {}
        for r, p in zip(hits.ray_indices.tolist(), hits.prim_indices.tolist()):
            first.setdefault(r, p)
        return first

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    @pytest.mark.parametrize("max_frontier", [None, 48])
    def test_matches_default_mode_first_hits(self, primitive, max_frontier):
        rng = np.random.default_rng(71)
        bvh, buffer, rays = self._setup(primitive, rng)
        default = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        all_hits = default.trace(rays)
        early = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        any_hits = early.trace(rays, mode="any_hit")

        assert self._first_hits(any_hits) == self._first_hits(all_hits)
        # Exactly one hit per hitting ray.
        assert np.unique(any_hits.ray_indices).size == any_hits.count
        # Early exit never does more work, and bookkeeping stays exact.
        a, b = default.counters, early.counters
        assert b.node_visits <= a.node_visits
        assert b.prim_tests <= a.prim_tests
        assert b.traversal_rounds <= a.traversal_rounds
        assert b.rays_with_hits == a.rays_with_hits
        assert b.rays_without_hits == a.rays_without_hits
        assert b.prim_hits == any_hits.count
        assert b.node_bytes_read == b.node_visits * bvh.node_bytes()

    @pytest.mark.parametrize("max_frontier", [None, 48])
    def test_callback_filtered_first_hits(self, max_frontier):
        rng = np.random.default_rng(73)
        bvh, buffer, rays = self._setup("triangle", rng)
        keep_even = lambda r, p, l: (p % 2 == 0)
        default = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        all_hits = default.trace(rays, any_hit=keep_even)
        early = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        any_hits = early.trace(rays, any_hit=keep_even, mode="any_hit")
        assert self._first_hits(any_hits) == self._first_hits(all_hits)
        assert np.all(any_hits.prim_indices % 2 == 0)


@pytest.mark.parametrize("builder", BUILDERS)
def test_refit_bounds_bit_identical(builder):
    rng = np.random.default_rng(5)
    n = 400
    points = rng.uniform(0, 500, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    bvh = build_bvh(buffer, BvhBuildOptions(builder=builder, allow_update=True))
    moved = TriangleBuffer(make_triangle_vertices(points[rng.permutation(n)]))
    golden_mins, golden_maxs = reference_refit_bounds(bvh, moved)
    refit_accel(bvh, moved)
    assert np.array_equal(bvh.node_mins, golden_mins.astype(np.float32))
    assert np.array_equal(bvh.node_maxs, golden_maxs.astype(np.float32))


class TestHashTableEquivalence:
    @pytest.mark.parametrize(
        "load_factor,group_size", [(0.8, 8), (0.5, 4), (0.95, 8), (0.9, 1)]
    )
    def test_bulk_build_matches_sequential_inserts(self, load_factor, group_size):
        rng = np.random.default_rng(13)
        n = 1500
        keys = rng.integers(0, n // 2, size=n).astype(np.uint64)
        table = WarpCoreHashTable(load_factor=load_factor, group_size=group_size)
        result = table.build(keys)
        group_of = (
            _mix_hash(table.keys) % np.uint64(table._num_groups)
        ).astype(np.int64)
        golden_keys, golden_rows, golden_probes = reference_hashtable_insert(
            table.keys, group_of, table._num_groups, table.group_size
        )

        # Probe statistics and per-group occupancy are insertion-order
        # invariants; both must match the sequential loop exactly.
        assert result.stats["avg_probe_groups_insert"] * n == pytest.approx(
            golden_probes
        )
        fill_new = (table._slot_keys.reshape(-1, group_size) != _EMPTY).sum(axis=1)
        fill_golden = (golden_keys.reshape(-1, group_size) != _EMPTY).sum(axis=1)
        assert np.array_equal(fill_new, fill_golden)
        # Same stored (key, rowID) pairs overall.
        occupied = table._slot_keys != _EMPTY
        golden_occupied = golden_keys != _EMPTY
        assert sorted(
            zip(table._slot_keys[occupied].tolist(), table._slot_rows[occupied].tolist())
        ) == sorted(
            zip(golden_keys[golden_occupied].tolist(), golden_rows[golden_occupied].tolist())
        )

    def test_lookups_match_sequentially_built_table(self):
        rng = np.random.default_rng(31)
        n = 2000
        keys = rng.integers(0, n // 3, size=n).astype(np.uint64)
        queries = rng.integers(0, n // 3 + 50, size=800).astype(np.uint64)

        table = WarpCoreHashTable()
        table.build(keys)
        run = table.point_lookup(queries)

        golden_table = WarpCoreHashTable()
        golden_table.build(keys)
        group_of = (
            _mix_hash(golden_table.keys) % np.uint64(golden_table._num_groups)
        ).astype(np.int64)
        golden_table._slot_keys, golden_table._slot_rows, _ = (
            reference_hashtable_insert(
                golden_table.keys,
                group_of,
                golden_table._num_groups,
                golden_table.group_size,
            )
        )
        golden_run = golden_table.point_lookup(queries)

        assert np.array_equal(run.hits_per_lookup, golden_run.hits_per_lookup)
        assert run.aggregate == golden_run.aggregate
        assert run.stats == golden_run.stats
        # result_rows reports the *minimum* matching rowID, which is
        # independent of slot layout — so the bulk-built and sequentially
        # built tables must agree exactly.
        assert np.array_equal(run.result_rows, golden_run.result_rows)
        hit = run.result_rows != MISS_SENTINEL
        assert np.array_equal(
            table.keys[run.result_rows[hit].astype(np.int64)], queries[hit]
        )

    def test_empty_and_tiny_tables(self):
        table = WarpCoreHashTable()
        result = table.build(np.array([7], dtype=np.uint64))
        assert result.num_keys == 1
        run = table.point_lookup(np.array([7, 8], dtype=np.uint64))
        assert run.hits_per_lookup.tolist() == [1, 0]


class TestCollectRowIds:
    def test_groups_and_order_preserved(self):
        hits = HitRecords(
            ray_indices=np.array([0, 1, 2, 3, 4], dtype=np.int64),
            prim_indices=np.array([10, 11, 12, 13, 14], dtype=np.int64),
            lookup_ids=np.array([2, 0, 2, 2, 5], dtype=np.int64),
            num_rays=5,
        )
        collected = collect_row_ids(hits, 7)
        assert len(collected) == 7
        assert collected[0].tolist() == [11]
        assert collected[2].tolist() == [10, 12, 13]
        assert collected[5].tolist() == [14]
        for lookup_id in (1, 3, 4, 6):
            assert collected[lookup_id].size == 0
            assert collected[lookup_id].dtype == np.uint64

    def test_empty_hits(self):
        hits = HitRecords(
            ray_indices=np.zeros(0, dtype=np.int64),
            prim_indices=np.zeros(0, dtype=np.int64),
            lookup_ids=np.zeros(0, dtype=np.int64),
            num_rays=0,
        )
        collected = collect_row_ids(hits, 3)
        assert [c.size for c in collected] == [0, 0, 0]

    def test_matches_naive_grouping_on_random_hits(self):
        rng = np.random.default_rng(41)
        m, num_lookups = 5000, 300
        hits = HitRecords(
            ray_indices=np.arange(m, dtype=np.int64),
            prim_indices=rng.integers(0, 10000, size=m),
            lookup_ids=rng.integers(0, num_lookups, size=m),
            num_rays=m,
        )
        collected = collect_row_ids(hits, num_lookups)
        for lookup_id in range(num_lookups):
            expected = hits.prim_indices[hits.lookup_ids == lookup_id].astype(np.uint64)
            assert np.array_equal(collected[lookup_id], expected)
