"""Tests for the BVH builders and their invariants."""

import numpy as np
import pytest

from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import Bvh, BvhBuildOptions, build_bvh
from repro.rtx.geometry import TriangleBuffer, make_triangle_vertices


def _buffer(n: int, spread: str = "line") -> TriangleBuffer:
    if spread == "line":
        points = np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])
    else:
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1000, size=(n, 3))
    return TriangleBuffer(make_triangle_vertices(points.astype(np.float64)))


def _check_invariants(bvh: Bvh, buffer: TriangleBuffer) -> None:
    """Structural invariants every well-formed BVH must satisfy."""
    # 1. The permutation covers every primitive exactly once.
    assert sorted(bvh.prim_indices.tolist()) == list(range(len(buffer)))
    # 2. Every leaf range lies within bounds and leaves partition the range.
    leaves = np.flatnonzero(bvh.left < 0)
    covered = []
    for leaf in leaves:
        first = int(bvh.first_prim[leaf])
        count = int(bvh.prim_count[leaf])
        assert count >= 1
        covered.extend(range(first, first + count))
    assert sorted(covered) == list(range(len(buffer)))
    # 3. Every node's bounds enclose its primitives' bounds.
    prim_mins, prim_maxs = buffer.compute_aabbs()
    for leaf in leaves:
        first = int(bvh.first_prim[leaf])
        count = int(bvh.prim_count[leaf])
        idx = bvh.prim_indices[first : first + count]
        assert np.all(bvh.node_mins[leaf] <= prim_mins[idx].min(axis=0) + 1e-5)
        assert np.all(bvh.node_maxs[leaf] >= prim_maxs[idx].max(axis=0) - 1e-5)
    # 4. Parents enclose their children.
    inner = np.flatnonzero(bvh.left >= 0)
    for node in inner:
        l, r = int(bvh.left[node]), int(bvh.right[node])
        assert np.all(bvh.node_mins[node] <= bvh.node_mins[l] + 1e-5)
        assert np.all(bvh.node_mins[node] <= bvh.node_mins[r] + 1e-5)
        assert np.all(bvh.node_maxs[node] >= bvh.node_maxs[l] - 1e-5)
        assert np.all(bvh.node_maxs[node] >= bvh.node_maxs[r] - 1e-5)


class TestBuildOptions:
    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError):
            BvhBuildOptions(builder="octree").validate()

    def test_leaf_size_must_be_positive(self):
        with pytest.raises(ValueError):
            BvhBuildOptions(max_leaf_size=0).validate()

    def test_morton_bits_range(self):
        with pytest.raises(ValueError):
            BvhBuildOptions(morton_bits=25).validate()

    def test_sah_bins_range(self):
        with pytest.raises(ValueError):
            BvhBuildOptions(sah_bins=1).validate()


@pytest.mark.parametrize("builder", ["lbvh", "sah", "median"])
class TestBuilders:
    def test_invariants_on_line(self, builder):
        buffer = _buffer(100)
        bvh = build_bvh(buffer, BvhBuildOptions(builder=builder))
        _check_invariants(bvh, buffer)

    def test_invariants_on_random_cloud(self, builder):
        buffer = _buffer(200, spread="cloud")
        bvh = build_bvh(buffer, BvhBuildOptions(builder=builder))
        _check_invariants(bvh, buffer)

    def test_leaf_size_respected(self, builder):
        buffer = _buffer(128)
        bvh = build_bvh(buffer, BvhBuildOptions(builder=builder, max_leaf_size=2))
        leaves = bvh.left < 0
        assert bvh.prim_count[leaves].max() <= 2

    def test_single_primitive(self, builder):
        buffer = _buffer(1)
        bvh = build_bvh(buffer, BvhBuildOptions(builder=builder))
        assert bvh.node_count == 1
        assert bvh.leaf_count == 1

    def test_duplicate_positions_handled(self, builder):
        # Several primitives at identical coordinates (duplicate keys) must
        # not break the build.
        points = np.zeros((16, 3))
        buffer = TriangleBuffer(make_triangle_vertices(points))
        bvh = build_bvh(buffer, BvhBuildOptions(builder=builder, max_leaf_size=4))
        _check_invariants(bvh, buffer)


class TestBvhProperties:
    def test_depth_grows_logarithmically(self):
        shallow = build_bvh(_buffer(64))
        deep = build_bvh(_buffer(1024))
        assert deep.depth() > shallow.depth()
        assert deep.depth() <= 2 * np.log2(1024) + 4

    def test_node_count_bounded(self):
        bvh = build_bvh(_buffer(256), BvhBuildOptions(max_leaf_size=1))
        assert bvh.node_count <= 2 * 256

    def test_statistics_fields(self):
        bvh = build_bvh(_buffer(128))
        stats = bvh.statistics()
        assert stats.leaf_count > 0
        assert stats.mean_leaf_size <= stats.max_leaf_size
        assert stats.sah_cost > 0

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            build_bvh(TriangleBuffer(np.zeros((0, 3, 3), dtype=np.float32)))

    def test_structure_bytes_positive(self):
        bvh = build_bvh(_buffer(32))
        assert bvh.structure_bytes() == bvh.node_count * bvh.node_bytes()

    def test_surface_areas_nonnegative(self):
        bvh = build_bvh(_buffer(32))
        assert (bvh.surface_areas() >= 0).all()


class TestBuildInputIntegration:
    @pytest.mark.parametrize("primitive", ["triangle", "sphere", "aabb"])
    def test_build_via_build_input(self, primitive):
        points = np.column_stack([np.arange(50), np.zeros(50), np.zeros(50)])
        build_input = build_input_for_points(primitive, points)
        bvh = build_bvh(build_input.primitive_buffer())
        assert bvh.num_primitives == 50

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            build_input_for_points("torus", np.zeros((3, 3)))

    def test_build_input_byte_accounting(self):
        points = np.column_stack([np.arange(10), np.zeros(10), np.zeros(10)])
        tri = build_input_for_points("triangle", points)
        sph = build_input_for_points("sphere", points)
        box = build_input_for_points("aabb", points)
        assert tri.primitive_bytes > box.primitive_bytes > sph.primitive_bytes
        assert tri.num_primitives == sph.num_primitives == box.num_primitives == 10
