"""Tests for primitives, ray batches, and intersection routines."""

import numpy as np
import pytest

from repro.rtx.geometry import (
    AabbBuffer,
    RayBatch,
    SphereBuffer,
    TriangleBuffer,
    make_aabbs_from_points,
    make_sphere_centers,
    make_triangle_vertices,
    ray_box_overlap,
    ray_box_overlap_pairs,
)


def _line_points(n: int) -> np.ndarray:
    return np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)]).astype(np.float64)


class TestIntersectionPacks:
    """The cached SoA packs must match the stored geometry and be dropped
    whenever the geometry may have moved (compute_aabbs)."""

    def test_triangle_pack_matches_vertices(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(6)))
        v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z = buffer.intersection_pack()
        v64 = buffer.vertices.astype(np.float64)
        assert np.array_equal(np.column_stack([v0x, v0y, v0z]), v64[:, 0])
        assert np.array_equal(np.column_stack([e1x, e1y, e1z]), v64[:, 1] - v64[:, 0])
        assert np.array_equal(np.column_stack([e2x, e2y, e2z]), v64[:, 2] - v64[:, 0])
        assert all(arr.flags.c_contiguous for arr in buffer.intersection_pack())

    def test_pack_is_cached(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(4)))
        assert buffer.intersection_pack() is buffer.intersection_pack()

    @pytest.mark.parametrize("kind", ["triangle", "sphere", "aabb"])
    def test_compute_aabbs_invalidates_pack(self, kind):
        points = _line_points(8)
        if kind == "triangle":
            buffer = TriangleBuffer(make_triangle_vertices(points))
        elif kind == "sphere":
            buffer = SphereBuffer(make_sphere_centers(points))
        else:
            buffer = AabbBuffer(*make_aabbs_from_points(points))
        stale = buffer.intersection_pack()
        buffer.compute_aabbs()
        assert buffer.intersection_pack() is not stale

    @pytest.mark.parametrize("kind", ["triangle", "sphere", "aabb"])
    def test_traced_then_mutated_buffers_rebuild_their_packs(self, kind):
        # The PR 2 caching contract, probed from the mutation side: a full
        # engine trace warms the pack, the primitive buffer is then mutated
        # in place, and compute_aabbs() (what every build/refit path calls)
        # must rebuild the pack so the next trace sees the moved geometry.
        from repro.rtx.bvh import build_bvh
        from repro.rtx.traversal import TraversalEngine

        points = _line_points(16)
        moved_points = points + np.array([50.0, 0.0, 0.0])
        if kind == "triangle":
            buffer = TriangleBuffer(make_triangle_vertices(points))
            fresh = TriangleBuffer(make_triangle_vertices(moved_points))
        elif kind == "sphere":
            buffer = SphereBuffer(make_sphere_centers(points))
            fresh = SphereBuffer(make_sphere_centers(moved_points))
        else:
            buffer = AabbBuffer(*make_aabbs_from_points(points))
            fresh = AabbBuffer(*make_aabbs_from_points(moved_points))

        bvh = build_bvh(buffer)
        engine = TraversalEngine(bvh, buffer)
        ray = RayBatch(
            origins=[[3.0, 0.0, -0.5]], directions=[[0.0, 0.0, 1.0]],
            tmin=[0.0], tmax=[1.0],
        )
        assert engine.trace(ray).prim_indices.tolist() == [3]  # warms the pack
        stale = buffer.intersection_pack()

        # Mutate the underlying storage in place, as an update stream does.
        if kind == "triangle":
            buffer.vertices[:] = make_triangle_vertices(moved_points)
        elif kind == "sphere":
            buffer.centers[:] = make_sphere_centers(moved_points)
        else:
            mins, maxs = make_aabbs_from_points(moved_points)
            buffer.mins[:], buffer.maxs[:] = mins, maxs
        buffer.compute_aabbs()

        rebuilt = buffer.intersection_pack()
        assert rebuilt is not stale
        # The rebuilt pack must equal the pack of a freshly constructed
        # buffer over the moved geometry, component for component.
        for got, want in zip(rebuilt, fresh.intersection_pack()):
            assert np.array_equal(got, want)
        # And a rebuilt engine (the refit/rebuild path) hits the new spot.
        engine = TraversalEngine(build_bvh(buffer), buffer)
        assert engine.trace(ray).count == 0
        moved_ray = RayBatch(
            origins=[[53.0, 0.0, -0.5]], directions=[[0.0, 0.0, 1.0]],
            tmin=[0.0], tmax=[1.0],
        )
        assert engine.trace(moved_ray).prim_indices.tolist() == [3]

    def test_moved_geometry_intersects_freshly_after_refit_path(self):
        # Move every primitive in place, call compute_aabbs (what every
        # build/refit does), and check rays hit the *new* positions.
        points = _line_points(8)
        buffer = TriangleBuffer(make_triangle_vertices(points))
        ray = ([3.0, 0.0, -0.5], [0.0, 0.0, 1.0], 0.0, 1.0)
        assert buffer.intersect(*ray, np.arange(8)).tolist() == [3]
        buffer.vertices[:] = make_triangle_vertices(points + [100.0, 0.0, 0.0])
        buffer.compute_aabbs()
        assert buffer.intersect(*ray, np.arange(8)).size == 0
        assert buffer.intersect([103.0, 0.0, -0.5], [0.0, 0.0, 1.0], 0.0, 1.0,
                                np.arange(8)).tolist() == [3]


class TestRayBatch:
    def test_shapes_and_defaults(self):
        batch = RayBatch(
            origins=[[0, 0, 0], [1, 0, 0]],
            directions=[[1, 0, 0], [1, 0, 0]],
            tmin=[0, 0],
            tmax=[1, 2],
        )
        assert len(batch) == 2
        assert batch.origins.dtype == np.float32
        assert np.array_equal(batch.lookup_ids, [0, 1])

    def test_broadcast_tmin_tmax(self):
        batch = RayBatch(
            origins=np.zeros((3, 3)),
            directions=np.tile([0, 0, 1], (3, 1)),
            tmin=0.0,
            tmax=1.0,
        )
        assert batch.tmin.shape == (3,)
        assert batch.tmax.shape == (3,)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RayBatch(
                origins=np.zeros((3, 3)),
                directions=np.zeros((2, 3)),
                tmin=0.0,
                tmax=1.0,
            )

    def test_slice(self):
        batch = RayBatch(
            origins=np.arange(12).reshape(4, 3),
            directions=np.tile([1, 0, 0], (4, 1)),
            tmin=0.0,
            tmax=1.0,
        )
        part = batch.slice(1, 3)
        assert len(part) == 2
        assert part.origins[0, 0] == pytest.approx(3.0)

    def test_concatenate(self):
        a = RayBatch(origins=np.zeros((2, 3)), directions=np.tile([1, 0, 0], (2, 1)), tmin=0, tmax=1)
        b = RayBatch(origins=np.ones((3, 3)), directions=np.tile([1, 0, 0], (3, 1)), tmin=0, tmax=1)
        merged = RayBatch.concatenate([a, b])
        assert len(merged) == 5

    def test_concatenate_empty(self):
        empty = RayBatch.concatenate([])
        assert len(empty) == 0


class TestTriangleBuffer:
    def test_vertex_shape_validation(self):
        with pytest.raises(ValueError):
            TriangleBuffer(np.zeros((4, 3)))

    def test_primitive_bytes(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(10)))
        assert buffer.primitive_bytes() == 10 * 9 * 4

    def test_aabbs_contain_anchor(self):
        points = _line_points(5)
        buffer = TriangleBuffer(make_triangle_vertices(points))
        mins, maxs = buffer.compute_aabbs()
        assert np.all(mins[:, 0] <= points[:, 0])
        assert np.all(maxs[:, 0] >= points[:, 0])

    def test_anchor_is_hit_by_perpendicular_ray(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(3)))
        hits = buffer.intersect((1.0, 0.0, -0.5), (0.0, 0.0, 1.0), 0.0, 1.0, np.arange(3))
        assert hits.tolist() == [1]

    def test_anchor_is_hit_by_x_parallel_ray(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(3)))
        hits = buffer.intersect((-0.5, 0.0, 0.0), (1.0, 0.0, 0.0), 0.0, 3.0, np.arange(3))
        assert sorted(hits.tolist()) == [0, 1, 2]

    def test_gap_between_triangles(self):
        # A ray confined to the gap between keys 0 and 1 must hit nothing.
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(2)))
        hits = buffer.intersect((0.5, 0.0, -0.5), (0.0, 0.0, 1.0), 0.0, 1.0, np.arange(2))
        assert hits.size == 0

    def test_intersect_pairs_elementwise(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(4)))
        origins = np.array([[0, 0, -0.5], [1, 0, -0.5], [2, 0, -0.5], [9, 0, -0.5]], dtype=float)
        dirs = np.tile([0.0, 0.0, 1.0], (4, 1))
        mask = buffer.intersect_pairs(origins, dirs, np.zeros(4), np.ones(4), np.array([0, 1, 2, 3]))
        assert mask.tolist() == [True, True, True, False]

    def test_empty_candidates(self):
        buffer = TriangleBuffer(make_triangle_vertices(_line_points(2)))
        assert buffer.intersect((0, 0, 0), (1, 0, 0), 0, 1, np.array([], dtype=np.int64)).size == 0


class TestSphereBuffer:
    def test_radius_validation(self):
        with pytest.raises(ValueError):
            SphereBuffer(np.zeros((2, 3)), radius=0.0)

    def test_primitive_bytes(self):
        buffer = SphereBuffer(make_sphere_centers(_line_points(8)), radius=0.25)
        assert buffer.primitive_bytes() == 8 * 12 + 4

    def test_ray_through_center_hits(self):
        buffer = SphereBuffer(make_sphere_centers(_line_points(3)), radius=0.25)
        hits = buffer.intersect((2.0, 0.0, -0.5), (0.0, 0.0, 1.0), 0.0, 1.0, np.arange(3))
        assert hits.tolist() == [2]

    def test_ray_in_gap_misses(self):
        buffer = SphereBuffer(make_sphere_centers(_line_points(3)), radius=0.25)
        hits = buffer.intersect((0.5, 0.0, -0.5), (0.0, 0.0, 1.0), 0.0, 1.0, np.arange(3))
        assert hits.size == 0

    def test_x_parallel_ray_hits_all(self):
        buffer = SphereBuffer(make_sphere_centers(_line_points(4)), radius=0.25)
        hits = buffer.intersect((-0.5, 0.0, 0.0), (1.0, 0.0, 0.0), 0.0, 4.0, np.arange(4))
        assert sorted(hits.tolist()) == [0, 1, 2, 3]

    def test_aabbs_enclose_radius(self):
        buffer = SphereBuffer(make_sphere_centers(_line_points(2)), radius=0.25)
        mins, maxs = buffer.compute_aabbs()
        assert np.allclose(maxs - mins, 0.5)


class TestAabbBuffer:
    def test_corner_validation(self):
        with pytest.raises(ValueError):
            AabbBuffer(np.ones((2, 3)), np.zeros((2, 3)))

    def test_primitive_bytes(self):
        mins, maxs = make_aabbs_from_points(_line_points(4))
        buffer = AabbBuffer(mins, maxs)
        assert buffer.primitive_bytes() == 4 * 24

    def test_ray_through_box_hits(self):
        mins, maxs = make_aabbs_from_points(_line_points(4))
        buffer = AabbBuffer(mins, maxs)
        hits = buffer.intersect((3.0, 0.0, -0.5), (0.0, 0.0, 1.0), 0.0, 1.0, np.arange(4))
        assert hits.tolist() == [3]

    def test_ray_in_gap_misses(self):
        mins, maxs = make_aabbs_from_points(_line_points(2))
        buffer = AabbBuffer(mins, maxs)
        hits = buffer.intersect((0.5, 0.0, -0.5), (0.0, 0.0, 1.0), 0.0, 1.0, np.arange(2))
        assert hits.size == 0


class TestRayBoxOverlap:
    def test_axis_aligned_hit(self):
        mask = ray_box_overlap(
            (0, 0, 0), (1, 0, 0), 0.0, 10.0,
            np.array([[2, -1, -1]]), np.array([[3, 1, 1]]),
        )
        assert mask.tolist() == [True]

    def test_beyond_tmax_missed(self):
        mask = ray_box_overlap(
            (0, 0, 0), (1, 0, 0), 0.0, 1.0,
            np.array([[2, -1, -1]]), np.array([[3, 1, 1]]),
        )
        assert mask.tolist() == [False]

    def test_behind_origin_missed(self):
        mask = ray_box_overlap(
            (5, 0, 0), (1, 0, 0), 0.0, 10.0,
            np.array([[2, -1, -1]]), np.array([[3, 1, 1]]),
        )
        assert mask.tolist() == [False]

    def test_parallel_ray_inside_slab(self):
        # Direction has no y component; the ray's y must lie inside the box.
        inside = ray_box_overlap(
            (0, 0, 0), (1, 0, 0), 0.0, 10.0,
            np.array([[1, -1, -1]]), np.array([[2, 1, 1]]),
        )
        outside = ray_box_overlap(
            (0, 5, 0), (1, 0, 0), 0.0, 10.0,
            np.array([[1, -1, -1]]), np.array([[2, 1, 1]]),
        )
        assert inside.tolist() == [True]
        assert outside.tolist() == [False]

    def test_pairs_elementwise(self):
        origins = np.array([[0, 0, 0], [0, 0, 0]], dtype=float)
        dirs = np.array([[1, 0, 0], [0, 1, 0]], dtype=float)
        mins = np.array([[1, -1, -1], [1, -1, -1]], dtype=float)
        maxs = np.array([[2, 1, 1], [2, 1, 1]], dtype=float)
        mask = ray_box_overlap_pairs(origins, dirs, [0, 0], [10, 10], mins, maxs)
        assert mask.tolist() == [True, False]


class TestFactories:
    def test_triangle_centroid_is_anchor(self):
        points = _line_points(6)
        vertices = make_triangle_vertices(points)
        centroids = vertices.mean(axis=1)
        assert np.allclose(centroids, points, atol=1e-5)

    def test_triangle_extent_respects_half_extent(self):
        points = _line_points(4)
        vertices = make_triangle_vertices(points, half_extent=0.5)
        offsets = np.abs(vertices - points[:, None, :])
        assert offsets.max() <= 0.5 + 1e-6

    def test_triangle_custom_x_extent(self):
        points = _line_points(3)
        x_he = np.full(3, 0.01)
        vertices = make_triangle_vertices(points, half_extent=0.5, x_half_extent=x_he)
        x_offsets = np.abs(vertices[:, :, 0] - points[:, None, 0])
        assert x_offsets.max() <= 0.01 + 1e-6

    def test_aabb_factory_extent(self):
        mins, maxs = make_aabbs_from_points(_line_points(3), half_extent=0.25)
        assert np.allclose(maxs - mins, 0.5)

    def test_sphere_centers_passthrough(self):
        points = _line_points(3)
        assert np.allclose(make_sphere_centers(points), points)
