"""IndexService drivers: open/closed-loop replay, stats, config knobs."""

import numpy as np
import pytest

from repro.core.config import RXConfig
from repro.core.rx_index import RXIndex
from repro.serve import IndexService
from repro.workloads import (
    dense_shuffled_keys,
    zipf_point_stream,
    zipf_range_stream,
)


def make_index(num_keys=2048, seed=41, **config_kwargs):
    index = RXIndex(RXConfig(**config_kwargs))
    index.build(dense_shuffled_keys(num_keys, seed=seed))
    return index


class TestOpenLoopReplay:
    def test_serves_every_request_once_with_latencies(self):
        index = make_index()
        service = IndexService(index, max_batch=64, max_wait=1e-3, cache_capacity=0)
        stream = zipf_point_stream(index.keys, 300, 0.9, rate=1e5, seed=42)
        report = service.replay(stream)
        assert report.num_requests == 300
        assert report.num_queries == 300
        assert sorted(r.request_id for r in report.results) == list(range(1, 301))
        assert (report.latencies >= 0.0).all()
        assert report.makespan >= report.latencies.max()
        percentiles = report.latency_percentiles()
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert report.throughput_rps > 0
        assert service.stats()["scheduler"]["queries_per_launch"] > 1

    def test_results_match_plain_lookups(self):
        """End to end: replayed stream results equal RXIndex lookups."""
        index = make_index(seed=43)
        service = IndexService(index, max_batch=128, max_wait=1e-3, cache_capacity=64)
        stream = zipf_point_stream(
            index.keys, 200, 1.1, rate=1e6, queries_per_request=3, seed=44
        )
        report = service.replay(stream)
        in_order = sorted(report.results, key=lambda r: r.request_id)
        for entry, result in zip(stream.entries, in_order):
            reference = index.point_lookup(entry.queries)
            assert np.array_equal(result.result_rows(), reference.result_rows)
            assert result.aggregate(index.values) == reference.aggregate

    def test_slow_stream_closes_windows_by_wait(self):
        index = make_index(seed=45)
        service = IndexService(index, max_batch=10_000, max_wait=1e-4, cache_capacity=0)
        # 1k requests/second with a 0.1 ms wait bound: every request times
        # out alone before the next one arrives.
        stream = zipf_point_stream(
            index.keys, 20, 0.0, rate=1e3, seed=46, poisson=False
        )
        report = service.replay(stream)
        stats = service.stats()["scheduler"]
        assert stats["closed_by_wait"] == 20
        assert stats["closed_by_size"] == 0
        assert report.num_requests == 20

    def test_fast_stream_closes_windows_by_size(self):
        index = make_index(seed=47)
        service = IndexService(index, max_batch=32, max_wait=10.0, cache_capacity=0)
        stream = zipf_point_stream(index.keys, 128, 0.0, rate=1e9, seed=48)
        service.replay(stream)
        stats = service.stats()["scheduler"]
        assert stats["closed_by_size"] == 4
        assert stats["max_batch_queries"] == 32

    def test_pump_flushes_due_windows_only(self):
        """pump() is the interactive flush entry point: it honours both the
        size and the wait trigger relative to the caller's clock."""
        index = make_index(seed=44)
        service = IndexService(index, max_batch=4, max_wait=1.0, cache_capacity=0)
        service.submit_point(index.keys[:2], arrival=0.0)
        assert service.pump(now=0.5) == []  # neither trigger due yet
        results = service.pump(now=1.5)  # wait deadline passed
        assert [r.request_id for r in results] == [1]
        assert service.stats()["scheduler"]["closed_by_wait"] == 1
        for arrival in (2.0, 2.1):
            service.submit_point(index.keys[:2], arrival=arrival)
        results = service.pump(now=2.1)  # 4 pending queries: size trigger
        assert len(results) == 2
        assert service.stats()["scheduler"]["closed_by_size"] == 1
        assert not service.scheduler.pending

    def test_replay_requires_idle_service(self):
        index = make_index(seed=49)
        service = IndexService(index, max_batch=8, max_wait=1.0, cache_capacity=0)
        service.submit_point(index.keys[:2], arrival=0.0)
        stream = zipf_point_stream(index.keys, 4, 0.0, rate=1e3, seed=50)
        with pytest.raises(RuntimeError, match="idle"):
            service.replay(stream)


class TestClosedLoopReplay:
    def test_serves_everything_and_adapts_to_clients(self):
        index = make_index(seed=51)
        service = IndexService(index, max_batch=64, max_wait=1.0, cache_capacity=0)
        stream = zipf_point_stream(index.keys, 200, 0.5, rate=1e6, seed=52)
        report = service.replay_closed_loop(stream, num_clients=16)
        assert report.num_requests == 200
        assert (report.latencies > 0.0).all()
        stats = service.stats()["scheduler"]
        # At most num_clients requests can ever be in flight together.
        assert stats["max_batch_queries"] <= 16
        assert stats["launches"] >= 200 // 16

    def test_single_client_degenerates_to_serial(self):
        index = make_index(seed=53)
        service = IndexService(index, max_batch=64, max_wait=1.0, cache_capacity=0)
        stream = zipf_point_stream(index.keys, 20, 0.0, rate=1e6, seed=54)
        report = service.replay_closed_loop(stream, num_clients=1)
        assert service.stats()["scheduler"]["launches"] == 20
        assert report.num_requests == 20

    def test_invalid_client_count(self):
        index = make_index(seed=55)
        service = IndexService(index, max_batch=4, max_wait=1.0, cache_capacity=0)
        stream = zipf_point_stream(index.keys, 4, 0.0, rate=1e3, seed=56)
        with pytest.raises(ValueError, match="num_clients"):
            service.replay_closed_loop(stream, num_clients=0)


class TestMixedStreams:
    def test_point_and_range_streams_share_a_service(self):
        index = make_index(seed=57)
        service = IndexService(index, max_batch=256, max_wait=10.0, cache_capacity=0)
        points = zipf_point_stream(index.keys, 40, 0.8, rate=1e6, seed=58)
        ranges = zipf_range_stream(
            index.keys, 30, 0.8, span=16, rate=1e6, limit=4, seed=59
        )
        for entry in points.entries + ranges.entries:
            entry.submit(service, entry.arrival)
        results = service.drain()
        assert len(results) == 70
        by_id = sorted(results, key=lambda r: r.request_id)
        for entry, result in zip(points.entries + ranges.entries, by_id):
            if entry.kind == "point":
                reference = index.point_lookup(entry.queries)
            else:
                reference = index.range_lookup(entry.lowers, entry.uppers, limit=4)
            assert np.array_equal(result.result_rows(), reference.result_rows)


class TestStreamGenerators:
    def test_streams_are_deterministic(self):
        keys = dense_shuffled_keys(512, seed=61)
        a = zipf_point_stream(keys, 50, 1.0, rate=1e4, seed=62)
        b = zipf_point_stream(keys, 50, 1.0, rate=1e4, seed=62)
        assert len(a) == len(b) == 50
        for x, y in zip(a.entries, b.entries):
            assert x.arrival == y.arrival
            assert np.array_equal(x.queries, y.queries)

    def test_arrivals_are_monotone_and_rate_scaled(self):
        keys = dense_shuffled_keys(512, seed=63)
        stream = zipf_point_stream(keys, 100, 0.0, rate=1e3, seed=64)
        arrivals = np.array([e.arrival for e in stream.entries])
        assert (np.diff(arrivals) >= 0).all()
        # ~100 Poisson arrivals at 1k/s span roughly 0.1 s.
        assert 0.01 < arrivals[-1] < 1.0

    def test_zipf_skew_concentrates_queries(self):
        keys = dense_shuffled_keys(512, seed=65)
        skewed = zipf_point_stream(keys, 400, 2.0, rate=1e4, seed=66)
        uniform = zipf_point_stream(keys, 400, 0.0, rate=1e4, seed=66)
        def distinct(stream):
            return np.unique(np.concatenate([e.queries for e in stream.entries])).size
        assert distinct(skewed) < distinct(uniform) / 2

    def test_range_stream_spans_and_limits(self):
        keys = dense_shuffled_keys(512, seed=67)
        stream = zipf_range_stream(keys, 30, 1.0, span=8, rate=1e4, limit=3, seed=68)
        for entry in stream.entries:
            assert entry.kind == "range"
            assert int(entry.uppers[0] - entry.lowers[0]) == 7
            assert entry.limit == 3
        assert stream.num_queries == 30

    def test_generator_validation(self):
        keys = dense_shuffled_keys(64, seed=69)
        with pytest.raises(ValueError, match="rate"):
            zipf_point_stream(keys, 4, 0.0, rate=0.0)
        with pytest.raises(ValueError, match="queries_per_request"):
            zipf_point_stream(keys, 4, 0.0, rate=1.0, queries_per_request=0)
        with pytest.raises(ValueError, match="span"):
            zipf_range_stream(keys, 4, 0.0, span=0, rate=1.0)


class TestStatsAndKnobs:
    def test_index_stats_summary(self):
        index = RXIndex(RXConfig.paper_default().with_delta_updates(shard_bits=4))
        index.build(dense_shuffled_keys(1024, seed=71))
        stats = index.stats()
        assert stats["num_keys"] == 1024
        assert stats["epoch"] == 0
        assert stats["shard_bits"] == 4
        assert stats["shard_count"] >= 1
        assert stats["memory_final_bytes"] > 0
        assert stats["trace_counters"]["rays"] == 0
        index.point_lookup(index.keys[:16])
        assert index.stats()["trace_counters"]["rays"] == 16
        index.update(index.keys[::-1].copy())
        assert index.stats()["epoch"] == 1

    def test_stats_requires_built_index(self):
        with pytest.raises(RuntimeError, match="build"):
            RXIndex(RXConfig.paper_default()).stats()

    def test_service_defaults_come_from_config(self):
        config = RXConfig.paper_default()
        config.serve_max_batch = 7
        config.serve_max_wait = 0.25
        config.serve_cache_capacity = 3
        index = RXIndex(config)
        index.build(dense_shuffled_keys(256, seed=72))
        service = IndexService(index)
        assert service.scheduler.max_batch == 7
        assert service.scheduler.max_wait == 0.25
        assert service.cache.capacity == 3
        knobs = service.stats()["serve_knobs"]
        assert knobs == {
            "max_batch": 7,
            "max_wait": 0.25,
            "cache_capacity": 3,
            "deadline": None,
            "max_queue": None,
            "retry_max": 3,
        }

    def test_serve_knob_validation(self):
        for field, value in (
            ("serve_max_batch", 0),
            ("serve_max_wait", -1.0),
            ("serve_cache_capacity", -1),
        ):
            config = RXConfig.paper_default()
            setattr(config, field, value)
            with pytest.raises(ValueError, match=field):
                config.validate()
