"""Tests for the L2 cache model and the occupancy/launch model."""

import pytest

from repro.gpusim.cache import CacheModel
from repro.gpusim.device import RTX_4090
from repro.gpusim.kernel import OccupancyModel


class TestCacheModel:
    def setup_method(self):
        self.cache = CacheModel(RTX_4090)

    def test_small_working_set_fully_cached(self):
        assert self.cache.hit_rate(1 * 1024 * 1024) == pytest.approx(1.0)

    def test_large_working_set_low_hit_rate(self):
        small = self.cache.hit_rate(10 * 1024**3)
        assert small < 0.3

    def test_hit_rate_monotone_in_working_set(self):
        rates = [self.cache.hit_rate(ws) for ws in (2**20, 2**26, 2**30, 2**34)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_locality_raises_hit_rate(self):
        cold = self.cache.hit_rate(10 * 1024**3, locality=0.0)
        hot = self.cache.hit_rate(10 * 1024**3, locality=0.9)
        assert hot > cold
        assert hot <= 1.0

    def test_zero_working_set(self):
        assert self.cache.hit_rate(0) == 1.0

    def test_dram_bytes_filters_by_hit_rate(self):
        dram_small = self.cache.dram_bytes(1e9, working_set_bytes=1e6)
        dram_large = self.cache.dram_bytes(1e9, working_set_bytes=1e10)
        assert dram_small < dram_large

    def test_dram_bytes_includes_compulsory_traffic(self):
        dram = self.cache.dram_bytes(1e6, working_set_bytes=1e6, dram_bytes_min=5e6)
        assert dram >= 5e6

    def test_hot_fraction_reduces_traffic(self):
        cold = self.cache.dram_bytes(1e9, working_set_bytes=1e10, hot_fraction=0.0)
        warm = self.cache.dram_bytes(1e9, working_set_bytes=1e10, hot_fraction=0.7)
        assert warm < cold


class TestOccupancyModel:
    def setup_method(self):
        self.model = OccupancyModel(RTX_4090)

    def test_zero_threads(self):
        assert self.model.active_warps_per_sm(0) == 0.0
        assert self.model.occupancy(0) == 0.0

    def test_warps_saturate_at_max(self):
        warps = self.model.active_warps_per_sm(2**27)
        assert warps <= RTX_4090.max_warps_per_sm
        assert warps > 0.9 * RTX_4090.max_warps_per_sm

    def test_warps_monotone_in_threads(self):
        values = [self.model.active_warps_per_sm(2**n) for n in range(10, 27, 2)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_table5_shape(self):
        # Table 5: ~3.9 warps at 2^13 lookups, ~14.3 at 2^21 on the RTX 4090.
        low = self.model.active_warps_per_sm(2**13)
        high = self.model.active_warps_per_sm(2**21)
        assert 1.0 < low < 8.0
        assert 12.0 < high <= 16.0

    def test_bandwidth_fraction_bounds(self):
        assert self.model.bandwidth_fraction(2**8) >= self.model.min_bandwidth_fraction
        assert self.model.bandwidth_fraction(2**27) <= self.model.max_bandwidth_fraction

    def test_launch_overhead_scales_with_launches(self):
        assert self.model.launch_overhead_ms(1000) == pytest.approx(
            1000 * RTX_4090.kernel_launch_overhead_us / 1000.0
        )

    def test_latency_bound_grows_with_serial_depth(self):
        shallow = self.model.latency_bound_ms(2**27, serial_depth=2)
        deep = self.model.latency_bound_ms(2**27, serial_depth=26)
        assert deep > shallow

    def test_latency_zero_for_no_dependent_loads(self):
        assert self.model.latency_bound_ms(2**20, serial_depth=0) == 0.0
