"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import dense_shuffled_keys, point_lookups, range_lookups
from repro.workloads.table import SecondaryIndexWorkload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_keys() -> np.ndarray:
    """A dense, shuffled key column of 512 keys."""
    return dense_shuffled_keys(512, seed=7)


@pytest.fixture
def small_workload(small_keys) -> SecondaryIndexWorkload:
    """Key column + value column + 256 point lookups + 32 range lookups."""
    queries = point_lookups(small_keys, 256, seed=8)
    lowers, uppers = range_lookups(small_keys, 32, span=8, seed=9)
    return SecondaryIndexWorkload.from_keys(
        small_keys,
        point_queries=queries,
        range_lowers=lowers,
        range_uppers=uppers,
    )


@pytest.fixture
def sparse_workload() -> SecondaryIndexWorkload:
    """Sparse 32-bit keys (as in Section 4 of the paper) with point lookups."""
    from repro.workloads import sparse_uniform_keys

    keys = sparse_uniform_keys(512, key_bits=32, seed=11)
    queries = point_lookups(keys, 256, seed=12)
    return SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
