"""Randomised differential harness for every trace mode.

Generates random scenes and ray batches with the *stdlib* ``random`` module
(independent of the NumPy generators used inside the engine) and pins
``TraversalEngine.trace`` in all four modes — ``all``, ``any_hit``,
``first_k`` and ``ordered_k`` — bit for bit against the golden loops in
:mod:`repro.rtx._reference`: identical hit records (rays, primitives,
lookup_ids, order) *and* identical counters, across

* all three primitive types,
* duplicate-free and duplicate-heavy key columns,
* frontier chunk sizes ``{0, 1, 7, None}`` (0 and None alias "unbounded"),
* single-tree builds and Morton-prefix sharded forest builds (the stitched
  forest tree is additionally asserted array-equal to the single tree, and
  the engine traces the *forest* tree while the golden loops walk the
  single-tree build) — sharded cases alternate between the fork and the
  zero-copy shared-memory build backends across the two grid sweeps,
* single-ray lookups and multi-ray lookups sharing one first_k budget,
* traces with and without an elementwise any-hit filter.

On top of the reference equivalence, every ``first_k`` result is checked
against its defining property: the hits must be exactly the all-hits stream
cut to the first ``k`` surviving hits per lookup (a stable top-k cut).
Likewise every ``ordered_k`` result must be the per-lookup ``k`` smallest
hits of the all-hits stream under the ``(ray, t, prim)`` order — the sorted
top-k cut, with ``t`` computed by the shared ``hit_t_pairs`` kernels.

The generator seed defaults to 20260727 and can be overridden with the
``DIFF_SEED`` environment variable (CI runs extra seeds).  The harness
generates nearly a hundred cases and stays within a few seconds.
"""

import os
import random

import numpy as np
import pytest

from repro.rtx._reference import (
    reference_any_hit_trace,
    reference_first_k_trace,
    reference_ordered_k_trace,
    reference_trace,
)
from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh, bvh_arrays_diff
from repro.rtx.geometry import RayBatch
from repro.rtx.traversal import TraversalEngine

DIFF_SEED = int(os.environ.get("DIFF_SEED", "20260727"))
PRIMITIVES = ["triangle", "sphere", "aabb"]
CHUNK_SIZES = [0, 1, 7, None]
SHARD_BITS = [0, 3]
NUM_CASES = 96


def _make_case(rng: random.Random, case_index: int) -> dict:
    """One random scene + ray batch + trace configuration."""
    # Mixed-radix decode of the case index so the 96 cases sweep the full
    # primitive × chunk-size × sharding × duplicates grid (48 cells) twice.
    primitive = PRIMITIVES[case_index % len(PRIMITIVES)]
    chunk = CHUNK_SIZES[(case_index // len(PRIMITIVES)) % len(CHUNK_SIZES)]
    shard_bits = SHARD_BITS[(case_index // 12) % len(SHARD_BITS)]
    with_duplicates = (case_index // 24) % 2 == 0
    # The first grid sweep builds sharded cases with the fork backend, the
    # second with the zero-copy shared-memory backend — same scenes, same
    # trees, both stitches pinned against the single-tree build.
    backend = "shm" if shard_bits and (case_index // 48) % 2 else "fork"

    # Key column on a line: increasing positions with random gaps, with a
    # duplicate-heavy variant (several primitives share one position, so a
    # single ray picks up multiple hits at the same x).
    n_positions = rng.randrange(20, 90)
    xs: list[float] = []
    x = 0.0
    for _ in range(n_positions):
        x += rng.randrange(1, 6)
        repeats = rng.randrange(1, 4) if with_duplicates else 1
        xs.extend([x] * repeats)
    points = np.array([[v, 0.0, 0.0] for v in xs], dtype=np.float64)
    max_x = xs[-1]

    # Sharded builds are lbvh-only (the Morton-prefix partition is a prefix
    # of lbvh's split hierarchy); unsharded cases sweep all three builders.
    builder = "lbvh" if shard_bits else rng.choice(("lbvh", "median", "sah"))
    max_leaf_size = rng.choice((1, 2, 4))

    # Ray batch: a mix of offset range rays, from-zero range rays (overlap
    # every preceding key — the early-exit worst case), and perpendicular
    # point rays.  Some lookups fan out into two rays sharing one first_k
    # budget, like a multi-row 3D-Mode range lookup.
    num_lookups = rng.randrange(12, 40)
    origins, directions, tmins, tmaxs, lookup_ids = [], [], [], [], []
    for lookup in range(num_lookups):
        fan_out = 2 if rng.random() < 0.3 else 1
        for _ in range(fan_out):
            shape = rng.random()
            lo = rng.uniform(-2.0, max_x)
            if shape < 0.4:  # offset range ray along +x
                origins.append([lo, 0.0, 0.0])
                directions.append([1.0, 0.0, 0.0])
                tmins.append(0.0)
                tmaxs.append(rng.uniform(1.0, 25.0))
            elif shape < 0.8:  # from-zero range ray along +x
                origins.append([0.0, 0.0, 0.0])
                directions.append([1.0, 0.0, 0.0])
                tmins.append(lo)
                tmaxs.append(lo + rng.uniform(1.0, 25.0))
            else:  # perpendicular point ray along +z
                origins.append([lo, 0.0, -0.5])
                directions.append([0.0, 0.0, 1.0])
                tmins.append(0.0)
                tmaxs.append(1.0)
            lookup_ids.append(lookup)

    return {
        "primitive": primitive,
        "chunk": chunk,
        "shard_bits": shard_bits,
        "backend": backend,
        "builder": builder,
        "max_leaf_size": max_leaf_size,
        "points": points,
        "rays": RayBatch(
            origins=np.array(origins),
            directions=np.array(directions),
            tmin=np.array(tmins),
            tmax=np.array(tmaxs),
            lookup_ids=np.array(lookup_ids, dtype=np.int64),
        ),
        "limit": rng.randrange(1, 6),
        "any_hit": (lambda r, p, l: (p % 3 != 0)) if case_index % 5 == 4 else None,
    }


def _assert_same(hits, counters, golden_hits, golden_counters, label):
    assert np.array_equal(hits.ray_indices, golden_hits.ray_indices), label
    assert np.array_equal(hits.prim_indices, golden_hits.prim_indices), label
    assert np.array_equal(hits.lookup_ids, golden_hits.lookup_ids), label
    assert counters.as_dict() == golden_counters.as_dict(), label


def _stable_top_k_cut(all_hits, num_rays: int, limit: int):
    """The first ``limit`` hits per lookup of the all-hits stream."""
    taken: dict[int, int] = {}
    keep = np.empty(all_hits.count, dtype=bool)
    for i, lookup in enumerate(all_hits.lookup_ids.tolist()):
        count = taken.get(lookup, 0)
        keep[i] = count < limit
        taken[lookup] = count + keep[i]
    return all_hits.ray_indices[keep], all_hits.prim_indices[keep]


def _sorted_top_k_cut(all_hits, buffer, rays, limit: int):
    """Per lookup: the ``limit`` smallest all-hits under ``(ray, t, prim)``.

    The defining property of ``ordered_k``, computed independently of both
    the engine and the reference loop — only the ``t`` values come from the
    shared ``hit_t_pairs`` kernels (their bit-identity is the point).
    """
    r = all_hits.ray_indices
    ts = buffer.hit_t_pairs(
        np.asarray(rays.origins)[r],
        np.asarray(rays.directions)[r],
        np.asarray(rays.tmin)[r],
        np.asarray(rays.tmax)[r],
        all_hits.prim_indices,
    )
    keep_rays, keep_prims = [], []
    for lookup in np.unique(all_hits.lookup_ids):
        sel = np.nonzero(all_hits.lookup_ids == lookup)[0]
        order = np.lexsort((all_hits.prim_indices[sel], ts[sel], r[sel]))
        cut = sel[order][:limit]
        keep_rays.append(r[cut])
        keep_prims.append(all_hits.prim_indices[cut])
    if not keep_rays:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(keep_rays), np.concatenate(keep_prims)


@pytest.mark.parametrize("case_index", range(NUM_CASES))
def test_all_modes_bit_identical_to_reference(case_index):
    rng = random.Random(DIFF_SEED * 1000 + case_index)
    case = _make_case(rng, case_index)
    buffer = build_input_for_points(case["primitive"], case["points"]).primitive_buffer()
    golden_bvh = build_bvh(
        buffer,
        BvhBuildOptions(builder=case["builder"], max_leaf_size=case["max_leaf_size"]),
    )
    if case["shard_bits"]:
        # The engine walks the stitched forest tree while the golden loops
        # walk the single-tree build — pinning both the stitch and the
        # traversal.  The arrays must agree exactly for that to be a real
        # comparison, so assert it explicitly first.
        bvh = build_bvh(
            buffer,
            BvhBuildOptions(
                builder=case["builder"],
                max_leaf_size=case["max_leaf_size"],
                shard_bits=case["shard_bits"],
                backend=case["backend"],
            ),
        )
        diff = bvh_arrays_diff(bvh, golden_bvh)
        assert diff is None, f"forest diverged from the single tree on {diff!r}"
    else:
        bvh = golden_bvh
    rays = case["rays"]
    any_hit = case["any_hit"]
    label = (
        f"seed={DIFF_SEED} case={case_index} primitive={case['primitive']} "
        f"chunk={case['chunk']} builder={case['builder']} "
        f"shard_bits={case['shard_bits']} backend={case['backend']} "
        f"limit={case['limit']}"
    )

    def engine():
        return TraversalEngine(bvh, buffer, max_frontier=case["chunk"])

    # all-hits mode
    eng = engine()
    all_hits = eng.trace(rays, any_hit=any_hit)
    golden_hits, golden_counters = reference_trace(golden_bvh, buffer, rays, any_hit=any_hit)
    _assert_same(all_hits, eng.counters, golden_hits, golden_counters, f"all {label}")

    # any-hit mode
    eng = engine()
    hits = eng.trace(rays, any_hit=any_hit, mode="any_hit")
    golden_hits, golden_counters = reference_any_hit_trace(
        golden_bvh, buffer, rays, any_hit=any_hit
    )
    _assert_same(hits, eng.counters, golden_hits, golden_counters, f"any_hit {label}")

    # first_k mode
    limit = case["limit"]
    eng = engine()
    fk_hits = eng.trace(rays, any_hit=any_hit, mode="first_k", limit=limit)
    golden_hits, golden_counters = reference_first_k_trace(
        golden_bvh, buffer, rays, limit, any_hit=any_hit
    )
    _assert_same(fk_hits, eng.counters, golden_hits, golden_counters, f"first_k {label}")

    # first_k defining property: identical to the all-hits stream cut to the
    # first `limit` surviving hits per lookup.
    cut_rays, cut_prims = _stable_top_k_cut(all_hits, len(rays), limit)
    assert np.array_equal(fk_hits.ray_indices, cut_rays), label
    assert np.array_equal(fk_hits.prim_indices, cut_prims), label

    # ordered_k mode
    eng = engine()
    ok_hits = eng.trace(rays, any_hit=any_hit, mode="ordered_k", limit=limit)
    golden_hits, golden_counters = reference_ordered_k_trace(
        golden_bvh, buffer, rays, limit, any_hit=any_hit
    )
    _assert_same(ok_hits, eng.counters, golden_hits, golden_counters, f"ordered_k {label}")

    # ordered_k defining property: the per-lookup `limit` smallest surviving
    # hits under the (ray, t, prim) order, reported in that order.
    cut_rays, cut_prims = _sorted_top_k_cut(all_hits, buffer, rays, limit)
    assert np.array_equal(ok_hits.ray_indices, cut_rays), label
    assert np.array_equal(ok_hits.prim_indices, cut_prims), label


def test_case_generator_covers_the_grid():
    """The sweep must cover every primitive × chunk × shard × dup cell —
    and every sharded cell with both build backends."""
    seen = set()
    for case_index in range(NUM_CASES):
        case = _make_case(random.Random(DIFF_SEED * 1000 + case_index), case_index)
        seen.add(
            (
                case["primitive"],
                case["chunk"],
                case["shard_bits"],
                case["backend"],
                (case_index // 24) % 2 == 0,
            )
        )
    # 48 fork cells (full grid) + the 24 sharded cells repeated under shm.
    cells = len(PRIMITIVES) * len(CHUNK_SIZES) * len(SHARD_BITS) * 2
    assert len(seen) == cells + cells // 2
