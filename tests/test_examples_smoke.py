"""CI smoke tests for the ``examples/`` scripts.

Each example is executed as a real subprocess (the way a user runs it), at
sizes small enough for CI, and must exit cleanly — the examples carry their
own result assertions, so a drifting API or a wrong aggregate fails here
instead of rotting silently.  ``reproduce_paper.py`` is exercised on a
single experiment at the ``tiny`` scale to bound the wall-clock.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: every example script plus the arguments that keep its runtime CI-sized
EXAMPLES = [
    ("quickstart.py", []),
    ("composite_keys.py", []),
    ("index_based_join.py", []),
    ("miss_heavy_filter.py", []),
    ("serve_quickstart.py", []),
    ("reproduce_paper.py", ["--experiment", "fig03", "--scale", "tiny"]),
    ("reproduce_paper.py", ["--experiment", "serve", "--scale", "tiny"]),
    ("reproduce_paper.py", ["--list"]),
]


def example_id(example):
    script, args = example
    return script if not args else f"{script} {' '.join(args)}"


@pytest.mark.parametrize("example", EXAMPLES, ids=example_id)
def test_example_runs_clean(example):
    script, args = example
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} disappeared"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(path), *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} exited with {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_every_example_is_listed():
    """A new example must be added to the smoke matrix (or explicitly not)."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in EXAMPLES}
    assert on_disk == covered, (
        f"examples not covered by the smoke matrix: {sorted(on_disk - covered)}; "
        f"listed but missing on disk: {sorted(covered - on_disk)}"
    )
