"""Tests for the RX index itself."""

import numpy as np
import pytest

from repro.baselines.base import MISS_SENTINEL
from repro.core import (
    KeyDecomposition,
    KeyMode,
    PointRayMode,
    PrimitiveType,
    RangeRayMode,
    RXConfig,
    RXIndex,
    UpdatePolicy,
)
from repro.workloads import dense_shuffled_keys, point_lookups
from repro.workloads.table import SecondaryIndexWorkload
from repro.workloads.updates import swap_adjacent_keys, swap_adjacent_positions


class TestBuild:
    def test_build_reports_structure(self, small_workload):
        index = RXIndex()
        result = index.build(small_workload.keys, small_workload.values)
        assert result.num_keys == small_workload.num_keys
        assert result.stats["bvh_nodes"] > 0
        assert result.stats["compacted"] is True

    def test_lookup_before_build_fails(self):
        with pytest.raises(RuntimeError):
            RXIndex().point_lookup(np.array([1], dtype=np.uint64))

    def test_update_before_build_fails(self):
        with pytest.raises(RuntimeError):
            RXIndex().update(np.array([1], dtype=np.uint64))

    def test_naive_mode_rejects_large_keys(self):
        index = RXIndex(RXConfig(key_mode=KeyMode.NAIVE))
        with pytest.raises(ValueError):
            index.build(np.array([2**24], dtype=np.uint64))

    def test_rebuild_releases_previous_accel(self, small_keys):
        index = RXIndex()
        index.build(small_keys)
        used_once = index.context.memory.current_bytes
        index.build(small_keys)
        assert index.context.memory.current_bytes == used_once

    def test_empty_key_array_rejected(self):
        with pytest.raises(ValueError):
            RXIndex().build(np.array([], dtype=np.uint64))


class TestPointLookups:
    def test_results_match_reference(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        assert run.aggregate == small_workload.reference_point_aggregate()
        assert np.array_equal(run.hits_per_lookup, small_workload.reference_point_hits())

    def test_misses_marked_with_sentinel(self, small_keys):
        index = RXIndex()
        index.build(small_keys)
        run = index.point_lookup(np.array([10**9, int(small_keys[0])], dtype=np.uint64))
        assert run.result_rows[0] == MISS_SENTINEL
        assert small_keys[int(run.result_rows[1])] == small_keys[0]

    def test_duplicate_keys_return_all_rows(self):
        keys = np.array([7, 7, 7, 9], dtype=np.uint64)
        index = RXIndex()
        index.build(keys)
        run = index.point_lookup(np.array([7], dtype=np.uint64))
        assert run.hits_per_lookup[0] == 3

    def test_collect_point_matches(self):
        keys = np.array([4, 4, 8], dtype=np.uint64)
        index = RXIndex()
        index.build(keys)
        matches = index.collect_point_matches(np.array([4, 8, 5], dtype=np.uint64))
        assert sorted(matches[0].tolist()) == [0, 1]
        assert matches[1].tolist() == [2]
        assert matches[2].size == 0

    def test_stats_populated(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        assert run.stats["node_visits_per_ray"] > 0
        assert run.stats["rays_per_lookup"] == pytest.approx(1.0)

    @pytest.mark.parametrize("mode", list(PointRayMode))
    def test_every_point_ray_mode_is_correct(self, small_workload, mode):
        index = RXIndex(RXConfig(point_ray_mode=mode))
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        assert run.aggregate == small_workload.reference_point_aggregate()

    @pytest.mark.parametrize("primitive", list(PrimitiveType))
    def test_every_primitive_type_is_correct(self, small_workload, primitive):
        index = RXIndex(RXConfig(primitive=primitive))
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        assert run.aggregate == small_workload.reference_point_aggregate()

    def test_64_bit_keys(self):
        keys = dense_shuffled_keys(256) + np.uint64(1 << 45)
        queries = point_lookups(keys, 64, seed=2)
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        index = RXIndex()
        index.build(workload.keys, workload.values)
        run = index.point_lookup(queries)
        assert run.aggregate == workload.reference_point_aggregate()


class TestPointTraceMode:
    def test_auto_uses_any_hit_on_unique_keys(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        assert run.stats["trace_mode"] == "any_hit"
        assert run.aggregate == small_workload.reference_point_aggregate()
        assert np.array_equal(run.hits_per_lookup, small_workload.reference_point_hits())

    def test_auto_falls_back_on_duplicate_keys(self):
        keys = np.array([7, 7, 7, 9, 12], dtype=np.uint64)
        index = RXIndex()
        index.build(keys)
        run = index.point_lookup(np.array([7, 9], dtype=np.uint64))
        assert run.stats["trace_mode"] == "all"
        assert run.hits_per_lookup.tolist() == [3, 1]

    def test_forced_any_hit_matches_all_mode_on_unique_keys(self, small_workload):
        forced = RXIndex(RXConfig(point_trace_mode="any_hit"))
        forced.build(small_workload.keys, small_workload.values)
        run_any = forced.point_lookup(small_workload.point_queries)
        full = RXIndex(RXConfig(point_trace_mode="all"))
        full.build(small_workload.keys, small_workload.values)
        run_all = full.point_lookup(small_workload.point_queries)
        assert np.array_equal(run_any.result_rows, run_all.result_rows)
        assert np.array_equal(run_any.hits_per_lookup, run_all.hits_per_lookup)
        assert run_any.aggregate == run_all.aggregate
        # Early exit never does more traversal work.
        assert run_any.stats["total_node_visits"] <= run_all.stats["total_node_visits"]
        assert run_any.stats["total_prim_tests"] <= run_all.stats["total_prim_tests"]

    def test_any_hit_reduces_counters_for_from_zero_rays(self):
        # Irregular spacing + from-zero parallel rays: the workload the
        # hardware any-hit termination exists for.
        rng = np.random.default_rng(5)
        keys = np.unique(np.cumsum(rng.integers(1, 9, size=600)).astype(np.uint64))
        queries = point_lookups(keys, 256, seed=6)
        runs = {}
        for mode in ("all", "any_hit"):
            index = RXIndex(
                RXConfig(
                    key_mode=KeyMode.NAIVE,
                    point_ray_mode=PointRayMode.PARALLEL_FROM_ZERO,
                    point_trace_mode=mode,
                )
            )
            index.build(keys)
            runs[mode] = index.point_lookup(queries)
        assert np.array_equal(
            runs["any_hit"].result_rows, runs["all"].result_rows
        )
        assert (
            runs["any_hit"].stats["total_node_visits"]
            < runs["all"].stats["total_node_visits"]
        )
        assert (
            runs["any_hit"].stats["total_prim_tests"]
            < runs["all"].stats["total_prim_tests"]
        )

    def test_refit_update_rechecks_uniqueness(self, small_keys):
        index = RXIndex(RXConfig.paper_default().with_updates_enabled())
        index.build(small_keys)
        assert index._point_trace_mode() == "any_hit"
        index.update(swap_adjacent_keys(small_keys, num_swaps=16))
        assert index._point_trace_mode() == "any_hit"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="point_trace_mode"):
            RXIndex(RXConfig(point_trace_mode="nearest"))


class TestRangeLookups:
    def test_results_match_reference(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        run = index.range_lookup(small_workload.range_lowers, small_workload.range_uppers)
        assert run.aggregate == small_workload.reference_range_aggregate()
        assert np.array_equal(run.hits_per_lookup, small_workload.reference_range_hits())

    def test_zero_origin_range_rays_are_correct(self, small_workload):
        index = RXIndex(RXConfig(range_ray_mode=RangeRayMode.PARALLEL_FROM_ZERO))
        index.build(small_workload.keys, small_workload.values)
        run = index.range_lookup(small_workload.range_lowers, small_workload.range_uppers)
        assert run.aggregate == small_workload.reference_range_aggregate()

    def test_multi_row_range_in_narrow_decomposition(self):
        keys = dense_shuffled_keys(256)
        config = RXConfig(decomposition=KeyDecomposition(4, 8, 0), max_rays_per_range=64)
        index = RXIndex(config)
        workload = SecondaryIndexWorkload.from_keys(
            keys,
            range_lowers=np.array([10], dtype=np.uint64),
            range_uppers=np.array([60], dtype=np.uint64),
        )
        index.build(workload.keys, workload.values)
        run = index.range_lookup(workload.range_lowers, workload.range_uppers)
        assert run.aggregate == workload.reference_range_aggregate()
        assert run.stats["rays_per_lookup"] > 1

    def test_mismatched_bounds_rejected(self, small_keys):
        index = RXIndex()
        index.build(small_keys)
        with pytest.raises(ValueError):
            index.range_lookup(np.array([1], dtype=np.uint64), np.array([2, 3], dtype=np.uint64))


class TestRangeLimitPushdown:
    def test_per_call_limit_caps_every_lookup(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        full = small_workload.reference_range_hits()
        for limit in (1, 3, 8, 100):
            run = index.range_lookup(
                small_workload.range_lowers, small_workload.range_uppers, limit=limit
            )
            assert np.array_equal(run.hits_per_lookup, np.minimum(full, limit))
            assert run.stats["trace_mode"] == "first_k"
            assert run.stats["range_limit"] == limit

    def test_limited_rows_are_a_stable_cut_of_the_unlimited_run(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        unlimited = index.range_lookup(
            small_workload.range_lowers, small_workload.range_uppers
        )
        limited = index.range_lookup(
            small_workload.range_lowers, small_workload.range_uppers, limit=2
        )
        # The first reported row per lookup is unchanged by the cut, and the
        # limited traversal never does more work.
        assert np.array_equal(limited.result_rows, unlimited.result_rows)
        assert limited.stats["total_node_visits"] <= unlimited.stats["total_node_visits"]
        assert limited.stats["total_prim_tests"] <= unlimited.stats["total_prim_tests"]

    def test_config_default_applies_and_per_call_overrides(self, small_workload):
        index = RXIndex(RXConfig(range_limit=2))
        index.build(small_workload.keys, small_workload.values)
        full = small_workload.reference_range_hits()
        lowers, uppers = small_workload.range_lowers, small_workload.range_uppers
        # "auto" (the default) defers to the configured limit ...
        auto = index.range_lookup(lowers, uppers)
        assert np.array_equal(auto.hits_per_lookup, np.minimum(full, 2))
        # ... an int overrides it for one call ...
        override = index.range_lookup(lowers, uppers, limit=4)
        assert np.array_equal(override.hits_per_lookup, np.minimum(full, 4))
        # ... and None forces the all-hits behaviour despite the config.
        unlimited = index.range_lookup(lowers, uppers, limit=None)
        assert np.array_equal(unlimited.hits_per_lookup, full)
        assert unlimited.stats["trace_mode"] == "all"
        assert unlimited.aggregate == small_workload.reference_range_aggregate()

    def test_limit_respected_by_multi_row_lookups(self):
        # A narrow decomposition fans one lookup into several rays; the
        # budget must be shared across them, not granted per ray.
        keys = dense_shuffled_keys(256)
        config = RXConfig(
            decomposition=KeyDecomposition(4, 8, 0), max_rays_per_range=64
        )
        index = RXIndex(config)
        workload = SecondaryIndexWorkload.from_keys(
            keys,
            range_lowers=np.array([10], dtype=np.uint64),
            range_uppers=np.array([60], dtype=np.uint64),
        )
        index.build(workload.keys, workload.values)
        run = index.range_lookup(
            workload.range_lowers, workload.range_uppers, limit=5
        )
        assert run.stats["rays_per_lookup"] > 1
        assert run.hits_per_lookup.tolist() == [5]

    def test_invalid_limits_rejected(self, small_keys):
        with pytest.raises(ValueError, match="range_limit"):
            RXConfig(range_limit=0).validate()
        index = RXIndex()
        index.build(small_keys)
        bounds = np.array([1], dtype=np.uint64), np.array([5], dtype=np.uint64)
        with pytest.raises(ValueError, match="at least 1"):
            index.range_lookup(*bounds, limit=0)
        with pytest.raises(ValueError, match="int, None or 'auto'"):
            index.range_lookup(*bounds, limit="unbounded")


class TestUpdates:
    def test_rebuild_policy_reindexes(self, small_keys):
        index = RXIndex()
        workload = SecondaryIndexWorkload.from_keys(small_keys)
        index.build(workload.keys, workload.values)
        updated = swap_adjacent_positions(small_keys, 32, seed=3)
        outcome = index.update(updated)
        assert outcome.policy is UpdatePolicy.REBUILD
        run = index.point_lookup(updated[:16])
        assert (run.hits_per_lookup > 0).all()

    def test_refit_policy_keeps_results_correct(self, small_keys):
        config = RXConfig.paper_default().with_updates_enabled()
        index = RXIndex(config)
        workload = SecondaryIndexWorkload.from_keys(small_keys)
        index.build(workload.keys, workload.values)
        updated = swap_adjacent_keys(small_keys, 32, seed=4)
        outcome = index.update(updated)
        assert outcome.policy is UpdatePolicy.REFIT
        updated_workload = SecondaryIndexWorkload(
            keys=updated, values=workload.values, point_queries=updated[:64]
        )
        run = index.point_lookup(updated_workload.point_queries)
        assert run.aggregate == updated_workload.reference_point_aggregate()

    def test_refit_position_swaps_degrade_bvh(self, small_keys):
        config = RXConfig.paper_default().with_updates_enabled()
        index = RXIndex(config)
        index.build(small_keys)
        baseline = index.point_lookup(small_keys[:128]).stats["node_visits_per_ray"]
        updated = swap_adjacent_positions(small_keys, len(small_keys) // 4, seed=5)
        outcome = index.update(updated)
        degraded = index.point_lookup(updated[:128]).stats["node_visits_per_ray"]
        assert outcome.surface_area_growth > 1.0
        assert degraded > baseline

    def test_refit_rejects_resize(self, small_keys):
        config = RXConfig.paper_default().with_updates_enabled()
        index = RXIndex(config)
        index.build(small_keys)
        with pytest.raises(ValueError):
            index.update(small_keys[:-1])


class TestCosting:
    def test_memory_footprint_scales(self, small_keys):
        index = RXIndex()
        index.build(small_keys)
        small = index.memory_footprint()
        large = index.memory_footprint(target_keys=2**26)
        assert large.final_bytes > small.final_bytes
        assert large.build_overhead_bytes > 0

    def test_build_profiles_scale_with_target(self, small_keys):
        index = RXIndex()
        index.build(small_keys)
        small = index.build_profiles()[0]
        large = index.build_profiles(target_keys=2**26)[0]
        assert large.bytes_accessed > small.bytes_accessed

    def test_lookup_profile_contains_rt_work(self, small_workload):
        index = RXIndex()
        index.build(small_workload.keys, small_workload.values)
        run = index.point_lookup(small_workload.point_queries)
        profile = index.lookup_profile(run, target_keys=2**26, target_lookups=2**27)
        assert profile.rt_tests > 0
        assert profile.threads == 2**27
        assert profile.working_set_bytes > 0

    def test_lookup_profile_software_primitives_add_instructions(self, small_workload):
        tri = RXIndex(RXConfig(primitive=PrimitiveType.TRIANGLE))
        box = RXIndex(RXConfig(primitive=PrimitiveType.AABB))
        for index in (tri, box):
            index.build(small_workload.keys, small_workload.values)
        tri_profile = tri.lookup_profile(tri.point_lookup(small_workload.point_queries))
        box_profile = box.lookup_profile(box.point_lookup(small_workload.point_queries))
        assert box_profile.instructions > tri_profile.instructions

    def test_limit_pushdown_discounts_cost_on_balanced_dense_trees(self):
        # On a balanced dense tree every leaf sits on the last level, so the
        # wavefront counters alone cannot show first_k's pruning (node visits
        # and prim tests come out identical).  The profile must consume the
        # budget_dropped_hits / leaf_visits stats to model the per-ray
        # hardware termination instead.
        index = RXIndex()
        index.build(np.arange(4096, dtype=np.uint64))
        lowers = np.arange(0, 3000, 3).astype(np.uint64)
        uppers = lowers + 900
        limited = index.range_lookup(lowers, uppers, limit=8)
        unlimited = index.range_lookup(lowers, uppers, limit=None)
        assert limited.stats["budget_dropped_hits"] > 0
        assert unlimited.stats["budget_dropped_hits"] == 0
        p_limited = index.lookup_profile(limited, target_keys=2**26, target_lookups=2**27)
        p_unlimited = index.lookup_profile(unlimited, target_keys=2**26, target_lookups=2**27)
        assert p_limited.rt_tests < 0.5 * p_unlimited.rt_tests
        assert p_limited.bytes_accessed < 0.5 * p_unlimited.bytes_accessed
