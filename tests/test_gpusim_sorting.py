"""Tests for the DeviceRadixSort functional + cost model."""

import numpy as np
import pytest

from repro.gpusim.sorting import DeviceRadixSort, MIN_EFFECTIVE_ITEMS, sort_cost_profile


class TestFunctionalSort:
    def test_sorts_keys_and_permutes_values(self):
        sorter = DeviceRadixSort()
        keys = np.array([5, 3, 9, 1], dtype=np.uint64)
        values = np.array([50, 30, 90, 10], dtype=np.uint64)
        result = sorter.sort_pairs(keys, values)
        assert result.keys.tolist() == [1, 3, 5, 9]
        assert result.values.tolist() == [10, 30, 50, 90]

    def test_sort_without_values_returns_permutation(self):
        sorter = DeviceRadixSort()
        keys = np.array([5, 3, 9, 1], dtype=np.uint64)
        result = sorter.sort_pairs(keys)
        assert np.array_equal(keys[result.values.astype(np.int64)], result.keys)

    def test_sort_is_stable_for_duplicates(self):
        sorter = DeviceRadixSort()
        keys = np.array([2, 1, 2, 1], dtype=np.uint64)
        values = np.array([0, 1, 2, 3], dtype=np.uint64)
        result = sorter.sort_pairs(keys, values)
        assert result.values.tolist() == [1, 3, 0, 2]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DeviceRadixSort().sort_pairs(np.arange(3), np.arange(4))

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            DeviceRadixSort(key_bytes=3)
        with pytest.raises(ValueError):
            DeviceRadixSort(value_bytes=2)


class TestSortCostModel:
    def test_pass_count_by_key_width(self):
        assert DeviceRadixSort(key_bytes=4).passes == 4
        assert DeviceRadixSort(key_bytes=8).passes == 8

    def test_profile_scales_with_items(self):
        small = sort_cost_profile(2**21)
        large = sort_cost_profile(2**23)
        assert large.bytes_accessed > small.bytes_accessed

    def test_profile_has_fixed_lower_bound(self):
        # Section 4.5: the sort run time stabilises for batches below 2^20.
        tiny = DeviceRadixSort().work_profile(2**10, num_invocations=2)
        assert tiny.bytes_accessed >= MIN_EFFECTIVE_ITEMS

    def test_64bit_keys_cost_more(self):
        narrow = sort_cost_profile(2**22, key_bytes=4)
        wide = sort_cost_profile(2**22, key_bytes=8)
        assert wide.bytes_accessed > narrow.bytes_accessed

    def test_invocations_multiply_launches(self):
        once = DeviceRadixSort().work_profile(2**21, num_invocations=1)
        many = DeviceRadixSort().work_profile(2**21, num_invocations=8)
        assert many.kernel_launches == 8 * once.kernel_launches
