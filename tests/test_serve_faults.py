"""Fault-tolerant serving under the deterministic fault injector.

Acceptance property: under a seeded fault schedule injecting launch
failures, launch latency, cache faults and update-swap failures, every
*successful* request's hits stay bit-identical to a clean solo launch
against the epoch that served it, and every rejected/timed-out request gets
an explicit error result — no silent drops, no hangs.

``FAULT_SEED`` (env var, default 0) reseeds the probabilistic schedules the
same way ``DIFF_SEED`` reseeds the differential harness, so CI exercises
the suite under several fault patterns.
"""

import gc
import os

import numpy as np
import pytest

from repro.core.config import RXConfig
from repro.core.rx_index import RXIndex
from repro.serve import (
    FaultInjector,
    FaultSpec,
    IndexService,
    InjectedFault,
    RequestFailure,
    RequestResult,
    RetryPolicy,
    UpdateFailed,
)
from repro.rtx.shm import live_block_names
from repro.workloads import dense_shuffled_keys
from repro.workloads.streams import zipf_point_stream

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


def delta_config():
    return RXConfig.paper_default().with_delta_updates(shard_bits=4)


def build_service(keys, injector=None, **kwargs):
    index = RXIndex(delta_config())
    index.build(keys)
    return IndexService(index, fault_injector=injector, **kwargs)


def shifted(keys, lo, hi):
    out = keys.copy()
    out[lo:hi] = out[lo:hi][::-1]
    return out


def account_everything(stream, report):
    """Every submitted request appears in exactly one of results/errors."""
    served = [r.request_id for r in report.results]
    failed = [f.request_id for f in report.errors]
    all_ids = sorted(served + failed)
    assert all_ids == list(range(1, len(stream) + 1))
    assert len(set(served) & set(failed)) == 0
    for failure in report.errors:
        assert isinstance(failure, RequestFailure)
        assert failure.reason in {
            "rejected",
            "rejected_deadline",
            "timeout",
            "launch_failed",
            "epoch_retired",
        }


class TestFaultInjector:
    def test_schedule_fires_exactly_at_indices(self):
        injector = FaultInjector(seed=FAULT_SEED, specs={
            "launch": FaultSpec(at={1, 3}),
        })
        pattern = [injector.fires("launch") for _ in range(5)]
        assert pattern == [False, True, False, True, False]
        assert injector.fired["launch"] == 2
        assert injector.occurrences["launch"] == 5

    def test_probability_pattern_is_seed_deterministic(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed, specs={
                "cache": FaultSpec(probability=0.5),
            })
            return [injector.fires("cache") for _ in range(64)]

        assert pattern(FAULT_SEED) == pattern(FAULT_SEED)
        assert any(pattern(FAULT_SEED))
        assert not all(pattern(FAULT_SEED))

    def test_sites_draw_independent_streams(self):
        """Consulting other sites never shifts a site's fire pattern."""
        solo = FaultInjector(seed=FAULT_SEED, specs={
            "launch": FaultSpec(probability=0.4),
        })
        mixed = FaultInjector(seed=FAULT_SEED, specs={
            "launch": FaultSpec(probability=0.4),
            "cache": FaultSpec(probability=0.7),
        })
        solo_pattern = [solo.fires("launch") for _ in range(32)]
        mixed_pattern = []
        for _ in range(32):
            mixed.fires("cache")  # interleaved consults of another site
            mixed_pattern.append(mixed.fires("launch"))
        assert solo_pattern == mixed_pattern

    def test_check_raises_with_site_and_occurrence(self):
        injector = FaultInjector(specs={"update": FaultSpec(at={0})})
        with pytest.raises(InjectedFault) as err:
            injector.check("update")
        assert err.value.site == "update"
        assert err.value.occurrence == 0
        injector.check("update")  # occurrence 1 does not fire

    def test_latency_accumulates_only_when_fired(self):
        injector = FaultInjector(specs={
            "launch_latency": FaultSpec(at={1}, latency=0.25),
        })
        assert injector.latency() == 0.0
        assert injector.latency() == 0.25
        assert injector.injected_latency_seconds == 0.25

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector(specs={"gpu_meltdown": FaultSpec(probability=1.0)})

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(probability=float("nan"))
        with pytest.raises(ValueError, match="latency"):
            FaultSpec(latency=-1.0)


class TestRetryPolicy:
    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(backoff_base=1e-3, backoff_factor=2.0, jitter=0.0)
        assert policy.delay(0) == 1e-3
        assert policy.delay(1) == 2e-3
        assert policy.delay(2) == 4e-3

    def test_jitter_bounded_above_base(self):
        policy = RetryPolicy(
            backoff_base=1e-3, backoff_factor=2.0, jitter=0.5, seed=FAULT_SEED
        )
        for attempt in range(8):
            base = 1e-3 * 2.0**attempt
            assert base <= policy.delay(attempt) <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=float("nan"))
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-1e-3)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestLaunchRetry:
    def test_retried_launch_is_bit_identical_to_clean_run(self):
        keys = dense_shuffled_keys(1024, seed=31)
        queries = keys[:64]
        reference = RXIndex(delta_config())
        reference.build(keys)
        expected = reference.point_lookup(queries)

        injector = FaultInjector(seed=FAULT_SEED, specs={
            "launch": FaultSpec(at={0, 1}),  # first two attempts fail
        })
        service = build_service(keys, injector, cache_capacity=0)
        service.submit_point(queries, arrival=0.0)
        (result,) = service.drain()
        assert isinstance(result, RequestResult)
        assert np.array_equal(result.result_rows(), expected.result_rows)
        assert np.array_equal(result.hits_per_lookup(), expected.hits_per_lookup)
        resilience = service.stats()["resilience"]
        assert resilience["retries"] == 2
        assert resilience["launch_failures"] == 0
        assert resilience["backoff_seconds"] > 0.0

    def test_exhausted_retries_fail_every_request_explicitly(self):
        keys = dense_shuffled_keys(512, seed=32)
        # Fail occurrences 0..3: initial attempt + 3 retries all fault, the
        # next window's launch (occurrence 4) succeeds.
        injector = FaultInjector(seed=FAULT_SEED, specs={
            "launch": FaultSpec(at={0, 1, 2, 3}),
        })
        service = build_service(
            keys,
            injector,
            cache_capacity=0,
            retry=RetryPolicy(max_retries=3, jitter=0.0),
        )
        service.submit_point(keys[:4], arrival=0.0)
        service.submit_point(keys[4:8], arrival=0.0)
        failures = service.drain()
        assert len(failures) == 2
        for failure in failures:
            assert isinstance(failure, RequestFailure)
            assert failure.reason == "launch_failed"
        resilience = service.stats()["resilience"]
        assert resilience["launch_failures"] == 2
        assert resilience["retries"] == 3

        # The service recovers: the next window serves normally.
        service.submit_point(keys[:4], arrival=1.0)
        (result,) = service.drain()
        assert isinstance(result, RequestResult)

    def test_snapshot_pins_released_after_launch_failure(self):
        keys = dense_shuffled_keys(512, seed=33)
        injector = FaultInjector(specs={"launch": FaultSpec(probability=1.0)})
        service = build_service(
            keys, injector, cache_capacity=0, retry=RetryPolicy(max_retries=0)
        )
        snapshot = service.epochs.current()
        service.submit_point(keys[:4], arrival=0.0)
        service.drain()
        assert snapshot.pins == 0

    def test_retry_disabled_fails_on_first_fault(self):
        keys = dense_shuffled_keys(512, seed=34)
        injector = FaultInjector(specs={"launch": FaultSpec(at={0})})
        service = build_service(
            keys, injector, cache_capacity=0, retry=RetryPolicy(max_retries=0)
        )
        service.submit_point(keys[:4], arrival=0.0)
        (failure,) = service.drain()
        assert failure.reason == "launch_failed"
        assert service.stats()["resilience"]["retries"] == 0


class TestLatencyInjection:
    def test_injected_stall_counts_as_service_time(self):
        keys = dense_shuffled_keys(512, seed=35)
        injector = FaultInjector(specs={
            "launch_latency": FaultSpec(at={0}, latency=0.05),
        })
        service = build_service(keys, injector, cache_capacity=0)
        stream = zipf_point_stream(keys, 8, 0.0, rate=1000.0, seed=FAULT_SEED)
        report = service.replay(stream)
        assert injector.fired["launch_latency"] == 1
        assert injector.injected_latency_seconds == pytest.approx(0.05)
        assert report.service_seconds >= 0.05
        account_everything(stream, report)


class TestCacheFaults:
    def test_cache_unavailable_degrades_to_bypass(self):
        keys = dense_shuffled_keys(1024, seed=36)
        queries = keys[:16]
        reference = RXIndex(delta_config())
        reference.build(keys)
        expected = reference.point_lookup(queries)

        injector = FaultInjector(seed=FAULT_SEED, specs={
            "cache": FaultSpec(at={1}),  # second cache probe faults
        })
        service = build_service(keys, injector, cache_capacity=64)
        for arrival in (0.0, 1.0, 2.0):
            service.submit_point(queries, arrival=arrival)
            (result,) = service.drain()
            assert isinstance(result, RequestResult)
            assert np.array_equal(result.result_rows(), expected.result_rows)
        resilience = service.stats()["resilience"]
        assert resilience["degraded_flushes"] == 1
        # Flush 1: miss+insert. Flush 2: bypassed. Flush 3: hit again.
        assert service.cache.stats.hits >= 1

    def test_corrupt_cache_entry_detected_and_relaunched(self):
        keys = dense_shuffled_keys(1024, seed=37)
        queries = keys[:16]
        reference = RXIndex(delta_config())
        reference.build(keys)
        expected = reference.point_lookup(queries)

        injector = FaultInjector(seed=FAULT_SEED, specs={
            # Corruption consults fire only on cache *hits*; the first hit
            # is the second probe.
            "cache_corrupt": FaultSpec(at={0}),
        })
        service = build_service(keys, injector, cache_capacity=64)
        for arrival in (0.0, 1.0, 2.0):
            service.submit_point(queries, arrival=arrival)
            (result,) = service.drain()
            assert isinstance(result, RequestResult)
            assert result.epoch == service.index.epoch
            assert np.array_equal(result.result_rows(), expected.result_rows)
        resilience = service.stats()["resilience"]
        assert resilience["cache_corruptions_detected"] == 1


class TestDeadlines:
    def test_infeasible_deadline_rejected_up_front(self):
        keys = dense_shuffled_keys(512, seed=38)
        service = build_service(keys, cache_capacity=0)
        outcome = service.submit_point(keys[:4], arrival=1.0, deadline=0.0)
        assert isinstance(outcome, RequestFailure)
        assert outcome.reason == "rejected_deadline"
        assert not service.scheduler.pending
        assert service.stats()["resilience"]["rejections_deadline"] == 1

    def test_tight_deadlines_time_out_explicitly(self):
        """Unmeetable (but feasible-looking) deadlines produce explicit
        timeout results for every request — nothing is dropped."""
        keys = dense_shuffled_keys(1024, seed=39)
        service = build_service(keys, cache_capacity=0, deadline=1e-9)
        stream = zipf_point_stream(keys, 32, 0.5, rate=1000.0, seed=FAULT_SEED)
        report = service.replay(stream)
        account_everything(stream, report)
        assert len(report.results) == 0
        assert all(f.reason == "timeout" for f in report.errors)
        assert service.stats()["resilience"]["timeouts"] >= 32

    def test_deadline_forces_early_window_close(self):
        """A pending deadline tighter than max_wait closes the window early
        (reason "deadline"), and the request completes in time."""
        keys = dense_shuffled_keys(1024, seed=40)
        service = build_service(keys, cache_capacity=0, max_wait=10.0)
        service.submit_point(keys[:4], arrival=0.0, deadline=0.5)
        results = service.pump(now=0.4999)
        assert results == []  # not due yet (headroom is still zero)
        results = service.pump(now=0.5)
        assert len(results) == 1
        assert isinstance(results[0], RequestResult)
        assert service.scheduler.stats.closed_by_deadline == 1

    def test_expired_requests_shed_before_launch(self):
        keys = dense_shuffled_keys(1024, seed=41)
        service = build_service(keys, cache_capacity=0, max_wait=10.0)
        service.submit_point(keys[:4], arrival=0.0, deadline=0.5)
        service.submit_point(keys[4:8], arrival=0.0)  # no deadline
        results = service.pump(now=2.0)  # way past the first deadline
        kinds = {type(r) for r in results}
        assert kinds == {RequestFailure, RequestResult}
        failure = next(r for r in results if isinstance(r, RequestFailure))
        assert failure.reason == "timeout"
        assert service.stats()["resilience"]["expired_shed"] == 1


class TestAdmissionControl:
    def test_queue_bound_sheds_with_retry_after(self):
        keys = dense_shuffled_keys(512, seed=42)
        service = build_service(
            keys, cache_capacity=0, max_batch=4096, max_wait=1.0, max_queue=8
        )
        admitted, rejected = [], []
        for i in range(6):
            outcome = service.submit_point(keys[4 * i : 4 * i + 4], arrival=0.0)
            (rejected if isinstance(outcome, RequestFailure) else admitted).append(
                outcome
            )
        assert len(admitted) == 2  # 8 queries fit the bound
        assert len(rejected) == 4
        for failure in rejected:
            assert failure.reason == "rejected"
            assert failure.retry_after is not None
            assert 0.0 <= failure.retry_after <= 1.0
        resilience = service.stats()["resilience"]
        assert resilience["rejections_queue"] == 4
        assert resilience["admitted"] == 2
        # The queue drains and admits again.
        service.drain()
        assert not isinstance(
            service.submit_point(keys[:4], arrival=2.0), RequestFailure
        )

    def test_replay_reports_rejections(self):
        keys = dense_shuffled_keys(1024, seed=43)
        service = build_service(
            keys, cache_capacity=0, max_batch=4096, max_wait=0.05, max_queue=4
        )
        # A burst far above the queue bound: most requests shed.
        stream = zipf_point_stream(keys, 64, 0.0, rate=1e6, seed=FAULT_SEED)
        report = service.replay(stream)
        account_everything(stream, report)
        assert any(f.reason == "rejected" for f in report.errors)
        assert len(report.results) >= 1
        assert report.error_rate > 0.0


class TestUpdateRollback:
    def test_failed_swap_rolls_back_to_previous_content(self):
        keys0 = dense_shuffled_keys(1024, seed=44)
        keys1 = shifted(keys0, 0, 400)
        queries = keys0[:32]
        reference = RXIndex(delta_config())
        reference.build(keys0)
        expected = reference.point_lookup(queries)

        injector = FaultInjector(specs={"update": FaultSpec(at={0})})
        service = build_service(keys0, injector, cache_capacity=0)
        outcome = service.update(keys1)
        assert isinstance(outcome, UpdateFailed)
        assert outcome.rolled_back
        # Failed swap + rollback: the epoch advanced twice, content is old.
        assert service.index.epoch == 2
        assert np.array_equal(service.index.keys, keys0)

        service.submit_point(queries, arrival=0.0)
        (result,) = service.drain()
        assert result.epoch == 2
        assert np.array_equal(result.result_rows(), expected.result_rows)
        resilience = service.stats()["resilience"]
        assert resilience["updates_failed"] == 1
        assert resilience["updates_rolled_back"] == 1

    def test_second_update_succeeds_after_rollback(self):
        keys0 = dense_shuffled_keys(512, seed=45)
        keys1 = shifted(keys0, 0, 256)
        injector = FaultInjector(specs={"update": FaultSpec(at={0})})
        service = build_service(keys0, injector, cache_capacity=0)
        assert isinstance(service.update(keys1), UpdateFailed)
        assert not isinstance(service.update(keys1), UpdateFailed)
        assert np.array_equal(service.index.keys, keys1)


class TestPaginationUnderFaults:
    def test_mid_pagination_launch_fault_retries_without_skipping_a_page(self):
        """A launch fault hitting a resumed page mid-scan must be retried
        idempotently: the retry re-launches the identical rays and cursor
        filter against the pinned snapshot, so the drained scan is still
        bit-identical to the clean golden order — no page skipped, none
        served twice."""
        keys = dense_shuffled_keys(2048, seed=48)
        sel = (keys >= np.uint64(100)) & (keys <= np.uint64(900))
        rows = np.nonzero(sel)[0].astype(np.uint64)
        golden = rows[np.lexsort((rows, keys[sel]))]

        injector = FaultInjector(seed=FAULT_SEED, specs={
            # Occurrences 3 and 4: the 4th page's launch faults twice before
            # its retry succeeds — squarely mid-pagination.
            "launch": FaultSpec(at={3, 4}),
        })
        service = build_service(
            keys, injector, cache_capacity=0, retry=RetryPolicy(max_retries=3)
        )
        pages, cursor, pin = [], None, None
        for _ in range(10_000):
            outcome = service.submit_range(
                np.array([100], dtype=np.uint64),
                np.array([900], dtype=np.uint64),
                limit=64,
                order="key",
                cursor=cursor,
                pin_epoch=pin,
                arrival=float(len(pages)),
            )
            assert not isinstance(outcome, RequestFailure)
            (result,) = service.drain()
            assert isinstance(result, RequestResult), result
            pin = result.epoch if pin is None else pin
            pages.append(result.hits.prim_indices.astype(np.uint64))
            cursor = result.next_cursor
            if cursor is None:
                break
        assert injector.fired["launch"] == 2
        assert service.stats()["resilience"]["retries"] == 2
        flat = np.concatenate(pages)
        assert np.array_equal(flat, golden)  # no skips, no re-emits
        assert all(p.shape[0] == 64 for p in pages[:-1])


class TestShmBackendServing:
    def test_delta_updates_race_serving_replay_bit_identically(self):
        """DELTA_SHARD updates rebuilding dirty shards through the
        shared-memory backend land mid-stream while a seeded Zipf replay is
        serving: every served request must stay bit-identical to a clean
        *fork-backend* reference for the epoch that served it (a
        cross-backend check on top of the epoch-isolation one), and every
        shm block must be unlinked once the service is dropped."""
        config = RXConfig.paper_default().with_delta_updates(
            shard_bits=4, backend="shm"
        )
        keys0 = dense_shuffled_keys(2048, seed=47)
        keys1 = shifted(keys0, 100, 900)
        keys2 = shifted(keys1, 600, 1400)
        baseline = live_block_names()

        index = RXIndex(config)
        index.build(keys0)
        assert index.stats()["build"]["backend"] == "shm"
        service = IndexService(
            index, cache_capacity=128, max_batch=64, max_wait=2e-3
        )
        stream = zipf_point_stream(
            keys0, 192, 1.0, rate=5000.0, queries_per_request=2, seed=FAULT_SEED
        )
        arrivals = [e.arrival for e in stream.entries]
        updates = [
            (arrivals[len(arrivals) // 3], keys1),
            (arrivals[2 * len(arrivals) // 3], keys2),
        ]
        report = service.replay(stream, updates=updates)
        account_everything(stream, report)

        columns = {0: keys0}
        for entry, new_keys in zip(report.updates, [keys1, keys2]):
            assert not entry["failed"]
            columns[entry["epoch"]] = new_keys
        assert len(columns) == 3
        assert index.stats()["build"]["backend"] == "shm"

        references = {}
        for result in report.results:
            assert result.epoch in columns, "served by an unknown epoch"
            if result.epoch not in references:
                ref = RXIndex(delta_config())  # fork backend on purpose
                ref.build(columns[result.epoch])
                references[result.epoch] = ref
            queries = stream.entries[result.request_id - 1].queries
            expected = references[result.epoch].point_lookup(queries)
            assert np.array_equal(result.result_rows(), expected.result_rows)
            assert np.array_equal(
                result.hits_per_lookup(), expected.hits_per_lookup
            )
        assert len(report.results) > 0
        assert {r.epoch for r in report.results} == set(columns)

        del service, index, report
        gc.collect()
        leaked = live_block_names() - baseline
        assert not leaked, f"leaked shm blocks: {sorted(leaked)}"


class TestEndToEndChaos:
    def test_chaos_stream_serves_bit_identically_per_epoch(self):
        """The acceptance property: >= 4 distinct fault types fire during a
        replayed Zipf stream with mid-stream updates; every success matches
        the reference for the epoch that served it; every request gets
        exactly one explicit outcome."""
        keys0 = dense_shuffled_keys(2048, seed=46)
        keys1 = shifted(keys0, 0, 700)
        keys2 = shifted(keys1, 500, 1500)
        injector = FaultInjector(seed=FAULT_SEED, specs={
            "launch": FaultSpec(probability=0.05, at={1}),
            "launch_latency": FaultSpec(probability=0.05, at={3}, latency=1e-4),
            "cache": FaultSpec(probability=0.05, at={2}),
            "cache_corrupt": FaultSpec(probability=0.1, at={0}),
            "update": FaultSpec(at={0}),
        })
        service = build_service(
            keys0,
            injector,
            cache_capacity=256,
            max_batch=64,
            max_wait=2e-3,
            deadline=0.5,
            max_queue=512,
            retry=RetryPolicy(max_retries=2, jitter=0.0),
        )
        stream = zipf_point_stream(
            keys0, 256, 1.0, rate=5000.0, queries_per_request=2, seed=FAULT_SEED
        )
        arrivals = [e.arrival for e in stream.entries]
        updates = [
            (arrivals[len(arrivals) // 3], keys1),
            (arrivals[2 * len(arrivals) // 3], keys2),
        ]
        report = service.replay(stream, updates=updates)
        account_everything(stream, report)

        # At least 4 distinct fault types actually fired.
        fired = {site for site, n in injector.fired.items() if n > 0}
        assert {"launch", "launch_latency", "cache", "update"} <= fired

        # Reconstruct each epoch's key column from the update log.
        columns = {0: keys0}
        content = keys0
        for entry, new_keys in zip(report.updates, [keys1, keys2]):
            if entry["failed"]:
                columns[entry["epoch"] - 1] = new_keys  # never serves
                columns[entry["epoch"]] = content
            else:
                content = new_keys
                columns[entry["epoch"]] = content
        references = {}
        violations = 0
        for result in report.results:
            assert result.epoch in columns, "served by an unknown epoch"
            if result.epoch not in references:
                ref = RXIndex(delta_config())
                ref.build(columns[result.epoch])
                references[result.epoch] = ref
            queries = stream.entries[result.request_id - 1].queries
            expected = references[result.epoch].point_lookup(queries)
            if not (
                np.array_equal(result.result_rows(), expected.result_rows)
                and np.array_equal(
                    result.hits_per_lookup(), expected.hits_per_lookup
                )
            ):
                violations += 1
        assert violations == 0
        assert len(report.results) > 0
        assert report.goodput_rps > 0.0
