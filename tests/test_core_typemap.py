"""Tests for order-preserving type mappings."""

import numpy as np
import pytest

from repro.core.typemap import (
    composite_to_uint64,
    float32_to_uint64,
    float64_to_uint64,
    int64_to_uint64,
    string_to_uint64,
    uint64_to_float64,
    uint64_to_int64,
)


class TestIntegerMapping:
    def test_round_trip(self):
        values = np.array([-(2**62), -5, 0, 7, 2**62], dtype=np.int64)
        assert np.array_equal(uint64_to_int64(int64_to_uint64(values)), values)

    def test_order_preserved(self):
        values = np.array([-100, -1, 0, 1, 100], dtype=np.int64)
        mapped = int64_to_uint64(values)
        assert np.all(np.diff(mapped.astype(object)) > 0)

    def test_extremes(self):
        values = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max], dtype=np.int64)
        mapped = int64_to_uint64(values)
        assert mapped[0] == 0
        assert mapped[1] == np.uint64(0xFFFFFFFFFFFFFFFF)


class TestFloatMapping:
    def test_round_trip(self):
        values = np.array([-1e300, -1.5, -0.0, 0.0, 2.25, 1e300])
        restored = uint64_to_float64(float64_to_uint64(values))
        assert np.allclose(restored, values)

    def test_order_preserved(self):
        values = np.array([-np.inf, -1e10, -2.5, 0.0, 1e-10, 3.0, np.inf])
        mapped = float64_to_uint64(values)
        assert np.all(np.diff(mapped.astype(object)) > 0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            float64_to_uint64(np.array([np.nan]))
        with pytest.raises(ValueError):
            float32_to_uint64(np.array([np.nan], dtype=np.float32))

    def test_float32_order_preserved(self):
        values = np.array([-7.5, -0.25, 0.0, 0.5, 123.0], dtype=np.float32)
        mapped = float32_to_uint64(values)
        assert np.all(np.diff(mapped.astype(object)) > 0)


class TestStringMapping:
    def test_lexicographic_order(self):
        strings = ["apple", "apples", "banana", "cherry"]
        mapped = string_to_uint64(strings)
        assert np.all(np.diff(mapped.astype(object)) > 0)

    def test_shared_prefix_collides(self):
        # Only the first eight characters are indexed; the rest must be
        # compared in software, as the paper notes.
        mapped = string_to_uint64(["averylongkeyA", "averylongkeyB"])
        assert mapped[0] == mapped[1]

    def test_num_chars_validation(self):
        with pytest.raises(ValueError):
            string_to_uint64(["x"], num_chars=9)

    def test_short_strings_padded(self):
        mapped = string_to_uint64(["a", "b"])
        assert mapped[0] < mapped[1]


class TestCompositeMapping:
    def test_lexicographic_packing(self):
        year = np.array([2023, 2023, 2024])
        month = np.array([1, 12, 1])
        packed = composite_to_uint64([year, month], [16, 8])
        assert packed[0] < packed[1] < packed[2]

    def test_width_overflow_rejected(self):
        with pytest.raises(ValueError):
            composite_to_uint64([np.array([1])], [65])

    def test_component_exceeding_width_rejected(self):
        with pytest.raises(ValueError):
            composite_to_uint64([np.array([256])], [8])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            composite_to_uint64([np.array([1]), np.array([1, 2])], [8, 8])
        with pytest.raises(ValueError):
            composite_to_uint64([np.array([1])], [8, 8])
