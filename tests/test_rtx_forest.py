"""Morton-prefix sharded BVH forest: stitching, workers, delta updates.

The load-bearing invariant — forest traversal bit-identical to the
single-tree engine across all trace modes — is pinned by the randomised
differential harness (``tests/test_trace_differential.py``, sharding axis).
This suite covers the forest-specific surface: shard-partition edge cases
(empty shards, everything in one shard, more shards than keys,
duplicate-heavy columns, bucket-spanning mixed leaves), worker-pool
bit-identity, delta-shard updates (dirty-subset rebuilds, no-op detection,
grid rescales, growing/shrinking columns), and the RXIndex plumbing around
them.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import RXConfig, RXIndex
from repro.core.config import UpdatePolicy
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import RTX_4090
from repro.rtx.bvh import BvhBuildOptions, build_bvh, bvh_arrays_diff
from repro.rtx.forest import build_forest, delta_update_forest, plan_top_level
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.workloads import clustered_key_swaps, dense_shuffled_keys

def _buffer(points: np.ndarray) -> TriangleBuffer:
    return TriangleBuffer(make_triangle_vertices(points))


def _line(xs) -> np.ndarray:
    xs = np.asarray(xs, dtype=np.float64)
    return np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])


def _assert_trees_equal(got, want, label=""):
    diff = bvh_arrays_diff(got, want)
    assert diff is None, (label, diff)


def _assert_forest_matches_single(
    points, shard_bits, max_leaf_size=4, workers=1, backend="fork"
):
    single = build_bvh(_buffer(points), BvhBuildOptions(max_leaf_size=max_leaf_size))
    forest = build_forest(
        _buffer(points),
        BvhBuildOptions(
            max_leaf_size=max_leaf_size,
            shard_bits=shard_bits,
            workers=workers,
            backend=backend,
        ),
    )
    _assert_trees_equal(forest.bvh, single, f"shard_bits={shard_bits} {backend}")
    return forest


@pytest.fixture(params=["fork", "shm"])
def backend(request):
    """Both build backends must pass every shape edge case bit-identically."""
    return request.param


class TestForestBuild:
    def test_empty_shards_are_skipped(self, backend):
        # Two tight clusters at opposite ends: almost every prefix bucket is
        # empty, and the stitched tree must still equal the single tree.
        rng = np.random.default_rng(1)
        xs = np.concatenate([rng.uniform(0, 10, 300), rng.uniform(1e6, 1e6 + 10, 300)])
        forest = _assert_forest_matches_single(_line(xs), shard_bits=8, backend=backend)
        assert forest.non_empty_shards < forest.num_shards

    def test_all_keys_in_one_shard(self, backend):
        # A single dense cluster in a scene whose bounds it defines: every
        # key lands in few buckets; the degenerate single-delegate case (no
        # top-level nodes) must hold for shard_bits=1.
        xs = np.arange(500, dtype=np.float64)
        forest = _assert_forest_matches_single(_line(xs), shard_bits=1, backend=backend)
        assert forest.non_empty_shards <= 2

    def test_more_shards_than_keys(self, backend):
        rng = np.random.default_rng(2)
        forest = _assert_forest_matches_single(
            rng.uniform(0, 100, size=(7, 3)), shard_bits=10, max_leaf_size=1,
            backend=backend,
        )
        assert forest.non_empty_shards <= 7

    def test_duplicate_heavy_column(self):
        # Many primitives share one coordinate: identical Morton codes force
        # the in-shard median fallback splits, which must still stitch into
        # the single tree.
        rng = np.random.default_rng(3)
        xs = np.repeat(rng.uniform(0, 1000, 40), 25)
        for shard_bits in (2, 6):
            _assert_forest_matches_single(_line(xs), shard_bits=shard_bits)
            _assert_forest_matches_single(_line(xs), shard_bits=shard_bits, backend="shm")

    def test_bucket_spanning_mixed_leaf(self, backend):
        # Three far-apart keys with max_leaf_size=4: the single tree is one
        # leaf spanning three buckets; the top-level planner must absorb the
        # buckets instead of delegating them.
        forest = _assert_forest_matches_single(
            _line([0.0, 1e6, 2e6]), shard_bits=8, max_leaf_size=4, backend=backend
        )
        assert forest.delegated_shards == 0
        assert forest.bvh.node_count == 1

    def test_single_primitive(self, backend):
        _assert_forest_matches_single(_line([5.0]), shard_bits=4, backend=backend)

    def test_worker_pool_is_bit_identical(self, backend):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1e5, size=(2000, 3))
        serial = build_forest(
            _buffer(points), BvhBuildOptions(shard_bits=4, workers=1, backend=backend)
        )
        pooled = build_forest(
            _buffer(points), BvhBuildOptions(shard_bits=4, workers=2, backend=backend)
        )
        _assert_trees_equal(pooled.bvh, serial.bvh, f"workers {backend}")
        assert pooled.workers_used == 2

    def test_shm_backend_requires_sharding(self):
        with pytest.raises(ValueError, match="shard_bits"):
            BvhBuildOptions(shard_bits=0, backend="shm").validate()
        with pytest.raises(ValueError, match="backend"):
            BvhBuildOptions(shard_bits=2, backend="threads").validate()

    def test_shm_telemetry_pickles_descriptors_not_arrays(self):
        # The zero-copy contract, asserted quantitatively: pooled shm builds
        # must pickle orders of magnitude less than pooled fork builds of
        # the same column, and what they do pickle must not scale with n.
        rng = np.random.default_rng(6)
        small = rng.uniform(0, 1e5, size=(500, 3))
        large = rng.uniform(0, 1e5, size=(8000, 3))
        opts = lambda backend: BvhBuildOptions(shard_bits=4, workers=2, backend=backend)
        fork_large = build_forest(_buffer(large), opts("fork"))
        shm_small = build_forest(_buffer(small), opts("shm"))
        shm_large = build_forest(_buffer(large), opts("shm"))
        assert fork_large.telemetry.bytes_pickled > 16 * large.shape[0]
        assert shm_large.telemetry.bytes_pickled < fork_large.telemetry.bytes_pickled // 10
        # 16x the keys must not move per-task pickle traffic by more than the
        # handful of extra non-empty shards' descriptors.
        assert shm_large.telemetry.bytes_pickled < 4 * shm_small.telemetry.bytes_pickled
        assert shm_large.telemetry.bytes_shared > large.shape[0] * 100
        assert fork_large.telemetry.bytes_shared == 0

    def test_shard_bits_requires_lbvh(self):
        with pytest.raises(ValueError, match="lbvh"):
            BvhBuildOptions(builder="sah", shard_bits=2).validate()

    def test_dispatch_only_reaches_overlapping_shards(self):
        # Keys split into two far-apart clusters; a ray through the low
        # cluster must only be dispatched to the shards bounding it.
        xs = np.concatenate([np.arange(200.0), 1e6 + np.arange(200.0)])
        forest = build_forest(_buffer(_line(xs)), BvhBuildOptions(shard_bits=6))
        assert forest.delegated_shards >= 2
        rays = RayBatch(
            origins=[[0.0, 0.0, 0.0]],
            directions=[[1.0, 0.0, 0.0]],
            tmin=[0.0],
            tmax=[50.0],
        )
        counts = forest.dispatch_counts(rays)
        ids, mins, _ = forest.shard_bounds()
        low_shards = {int(b) for b, m in zip(ids, mins) if m[0] < 1e5}
        for bucket, count in counts.items():
            assert count == (1 if bucket in low_shards else 0)

    def test_plan_top_level_counts(self):
        # Four equally full buckets → a balanced 3-inner-node top table.
        vals = np.array([0, 1, 2, 3], dtype=np.uint64)
        counts = np.array([10, 10, 10, 10])
        plan = plan_top_level(vals, counts, max_leaf_size=4)
        kinds = [entry[0] for entry in plan.entries]
        assert kinds.count("inner") == 3
        assert sorted(plan.delegated) == [0, 1, 2, 3]


class TestDeltaUpdate:
    def _forest(self, xs, shard_bits=6, backend="fork"):
        buf = _buffer(_line(xs))
        options = BvhBuildOptions(shard_bits=shard_bits, backend=backend)
        return build_forest(buf, options), buf

    def _check(self, forest, old_buf, new_xs, label):
        new_buf = _buffer(_line(new_xs))
        updated, stats = delta_update_forest(forest, old_buf, new_buf)
        fresh = build_bvh(_buffer(_line(new_xs)), BvhBuildOptions())
        _assert_trees_equal(updated.bvh, fresh, label)
        return updated, stats, new_buf

    def test_noop_update_rebuilds_nothing(self, backend):
        xs = np.arange(1000, dtype=np.float64)
        forest, buf = self._forest(xs, backend=backend)
        updated, stats = delta_update_forest(forest, buf, _buffer(_line(xs)))
        assert stats.noop
        assert stats.dirty_shards == 0 and stats.rebuilt_trees == 0
        assert updated is forest  # the original forest object, untouched

    def test_local_change_dirties_a_subset(self, backend):
        xs = np.arange(4096, dtype=np.float64)
        forest, buf = self._forest(xs, shard_bits=12, backend=backend)
        new_xs = xs.copy()
        new_xs[[100, 101]] = new_xs[[101, 100]]
        _, stats, _ = self._check(forest, buf, new_xs, "local")
        assert 1 <= stats.dirty_shards < forest.non_empty_shards
        assert stats.dirty_keys < stats.total_keys

    def test_chained_updates_stay_exact(self, backend):
        rng = np.random.default_rng(5)
        xs = np.arange(2048, dtype=np.float64)
        rng.shuffle(xs)
        forest, buf = self._forest(xs, shard_bits=9, backend=backend)
        for step in range(3):
            sel = rng.choice(xs.shape[0] - 1, 5, replace=False)
            new_xs = xs.copy()
            new_xs[sel], new_xs[sel + 1] = xs[sel + 1], xs[sel]
            forest, _, buf = self._check(forest, buf, new_xs, f"chain{step}")
            xs = new_xs

    def test_scene_rescale_forces_full_resort(self, backend):
        xs = np.arange(1024, dtype=np.float64)
        forest, buf = self._forest(xs, backend=backend)
        new_xs = xs.copy()
        new_xs[-1] = 5000.0  # moves the global grid bounds
        _, stats, _ = self._check(forest, buf, new_xs, "rescale")
        assert stats.rescaled
        assert stats.dirty_keys == stats.total_keys

    def test_growing_and_shrinking_column(self, backend):
        xs = np.arange(1024, dtype=np.float64)
        forest, buf = self._forest(xs, shard_bits=9, backend=backend)
        grown = np.concatenate([xs, [500.25, 500.5, 500.75]])
        updated, stats, new_buf = self._check(forest, buf, grown, "grow")
        assert stats.total_keys == 1027
        assert stats.dirty_shards < updated.non_empty_shards
        _, stats, _ = self._check(updated, new_buf, grown[:-10], "shrink")
        assert stats.total_keys == 1017


class TestRXIndexForest:
    def test_build_reports_shards_and_lookups_match_single_tree(self):
        keys = dense_shuffled_keys(2048, seed=21)
        sharded = RXIndex(RXConfig.paper_default().with_delta_updates(shard_bits=9))
        single = RXIndex(RXConfig.paper_default())
        result = sharded.build(keys)
        single.build(keys)
        assert result.stats["shards"] >= 2
        assert "build_workers" in result.stats

        rng = np.random.default_rng(22)
        queries = keys[rng.integers(0, keys.shape[0], 300)]
        a, b = sharded.point_lookup(queries), single.point_lookup(queries)
        assert np.array_equal(a.result_rows, b.result_rows)
        assert a.aggregate == b.aggregate
        assert a.stats["total_node_visits"] == b.stats["total_node_visits"]

        lo = np.sort(queries)[:64]
        a, b = (
            sharded.range_lookup(lo, lo + 40, limit=4),
            single.range_lookup(lo, lo + 40, limit=4),
        )
        assert np.array_equal(a.hits_per_lookup, b.hits_per_lookup)
        assert a.aggregate == b.aggregate
        assert a.stats["total_prim_tests"] == b.stats["total_prim_tests"]

    def test_delta_policy_validation(self):
        with pytest.raises(ValueError, match="delta-shard"):
            RXConfig(update_policy=UpdatePolicy.DELTA_SHARD).validate()
        RXConfig.paper_default().with_delta_updates(shard_bits=6).validate()

    def test_resizing_update_needs_explicit_values(self):
        keys = dense_shuffled_keys(512, seed=27)
        index = RXIndex(RXConfig.paper_default().with_delta_updates(shard_bits=6))
        index.build(keys)
        grown = np.concatenate([keys, [np.uint64(600)]])
        with pytest.raises(ValueError, match="changed the key count"):
            index.update(grown)
        outcome = index.update(grown, np.arange(grown.shape[0], dtype=np.uint64))
        assert outcome.stats["total_keys"] == 513
        assert index.point_lookup(grown[-1:]).hits_per_lookup.sum() == 1

    def test_delta_update_outcome_and_correctness(self):
        keys = dense_shuffled_keys(2048, seed=23)
        index = RXIndex(RXConfig.paper_default().with_delta_updates(shard_bits=12))
        index.build(keys)

        noop = index.update(keys.copy())
        assert noop.policy is UpdatePolicy.DELTA_SHARD
        assert noop.stats["noop"] and noop.stats["dirty_shards"] == 0

        new_keys = clustered_key_swaps(keys, 8, seed=24)
        outcome = index.update(new_keys)
        assert not outcome.stats["noop"]
        assert outcome.stats["dirty_shards"] < outcome.stats["non_empty_shards"]
        assert outcome.stats["dirty_keys"] < outcome.stats["total_keys"]

        fresh = RXIndex(RXConfig.paper_default())
        fresh.build(new_keys)
        queries = new_keys[:256]
        a, b = index.point_lookup(queries), fresh.point_lookup(queries)
        assert np.array_equal(a.result_rows, b.result_rows)
        assert a.aggregate == b.aggregate

    def test_delta_update_cost_scales_with_dirty_shards(self):
        # Extrapolate the profiles to paper scale the way table04 does — at
        # the simulation size the cost model's per-launch floor hides the
        # byte/instruction differences entirely.
        cost_model = CostModel(RTX_4090)
        keys = dense_shuffled_keys(4096, seed=25)
        key_factor = 2**26 / keys.shape[0]

        def update_cost(num_swaps):
            index = RXIndex(RXConfig.paper_default().with_delta_updates(shard_bits=12))
            index.build(keys)
            outcome = index.update(clustered_key_swaps(keys, num_swaps, seed=26))
            ms = sum(
                cost_model.kernel_cost(
                    replace(p.scaled(key_factor), kernel_launches=p.kernel_launches)
                ).time_ms
                for p in outcome.profiles
            )
            return ms, outcome.stats["dirty_shards"]

        small_ms, small_dirty = update_cost(2)
        large_ms, large_dirty = update_cost(512)
        rebuild_index = RXIndex(RXConfig.paper_default())
        rebuild_index.build(keys)
        rebuild_ms = sum(
            cost_model.kernel_cost(p).time_ms
            for p in rebuild_index.build_profiles(target_keys=2**26)
        )
        assert small_dirty < large_dirty
        assert small_ms < large_ms
        assert small_ms < 0.5 * rebuild_ms
