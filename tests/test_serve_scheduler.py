"""Differential tests of the micro-batching scheduler's coalesce/demux path.

The serving contract: demuxing a coalesced launch yields, for every request,
hits *and* counters bit-identical to issuing that request as its own solo
launch — across point lookups (all/any-hit), range lookups and LIMIT-k
(first_k) range lookups.  The tests compare against solo launches through
the same pipeline, so any divergence in ray generation, traversal order or
counter attribution fails loudly.
"""

import numpy as np
import pytest

from repro.core.config import RXConfig
from repro.core.rx_index import RXIndex
from repro.serve.scheduler import LaunchClass, MicroBatchScheduler, ServeRequest
from repro.serve.snapshot import EpochManager
from repro.workloads import dense_shuffled_keys, keys_with_multiplicity


def build_index(keys, **config_kwargs):
    index = RXIndex(RXConfig(**config_kwargs))
    index.build(keys)
    return index


def solo_launch(snapshot, request, klass):
    """Reference: the request issued alone through the same pipeline."""
    if klass.kind == "point":
        rays = snapshot.codec.point_ray_batch(
            request.queries, snapshot.config.point_ray_mode
        )
    else:
        rays = snapshot.codec.range_ray_batch(
            request.lowers,
            request.uppers,
            snapshot.config.range_ray_mode,
            max_rays_per_range=snapshot.config.max_rays_per_range,
        )
    return snapshot.pipeline.launch(
        rays, num_lookups=request.num_queries, mode=klass.mode, limit=klass.limit
    )


def assert_request_matches_solo(result, request, snapshot, klass):
    solo = solo_launch(snapshot, request, klass)
    assert np.array_equal(result.hits.ray_indices, solo.hits.ray_indices)
    assert np.array_equal(result.hits.prim_indices, solo.hits.prim_indices)
    assert np.array_equal(result.hits.lookup_ids, solo.hits.lookup_ids)
    assert result.hits.num_rays == solo.hits.num_rays
    assert result.counters.as_dict() == solo.counters.as_dict()


def make_point_requests(rng, keys, num_requests, max_queries=5):
    requests = []
    for i in range(num_requests):
        n = int(rng.integers(1, max_queries + 1))
        picks = rng.integers(0, keys.shape[0], size=n)
        requests.append(
            ServeRequest(request_id=i + 1, kind="point", queries=keys[picks])
        )
    return requests


def make_range_requests(rng, keys, num_requests, span, limit=None, start_id=1000):
    requests = []
    top = int(keys.max())
    for i in range(num_requests):
        lo = np.uint64(min(int(rng.integers(0, top)), top - span))
        requests.append(
            ServeRequest(
                request_id=start_id + i,
                kind="range",
                lowers=np.array([lo], dtype=np.uint64),
                uppers=np.array([lo + np.uint64(span - 1)], dtype=np.uint64),
                limit=limit,
            )
        )
    return requests


class TestDemuxBitIdentity:
    """Coalesced hits + counters must equal per-request solo launches."""

    def test_point_any_hit(self):
        rng = np.random.default_rng(1)
        keys = dense_shuffled_keys(2048, seed=2)  # duplicate-free -> any_hit
        index = build_index(keys)
        snapshot = EpochManager(index).current()
        assert snapshot.point_mode == "any_hit"
        scheduler = MicroBatchScheduler(max_batch=10_000, max_wait=0.0)
        requests = make_point_requests(rng, keys, 23)
        for request in requests:
            scheduler.submit(request)
        results = scheduler.flush(snapshot)
        assert [r.request_id for r in results] == [r.request_id for r in requests]
        klass = LaunchClass(kind="point", mode="any_hit")
        for result, request in zip(results, requests):
            assert_request_matches_solo(result, request, snapshot, klass)

    def test_point_all_mode_with_duplicates(self):
        rng = np.random.default_rng(3)
        keys = keys_with_multiplicity(1024, multiplicity=4, seed=4)
        index = build_index(keys)
        snapshot = EpochManager(index).current()
        assert snapshot.point_mode == "all"
        scheduler = MicroBatchScheduler(max_batch=10_000, max_wait=0.0)
        requests = make_point_requests(rng, keys, 17)
        for request in requests:
            scheduler.submit(request)
        results = scheduler.flush(snapshot)
        klass = LaunchClass(kind="point", mode="all")
        for result, request in zip(results, requests):
            assert_request_matches_solo(result, request, snapshot, klass)

    def test_range_all_hits(self):
        rng = np.random.default_rng(5)
        keys = dense_shuffled_keys(2048, seed=6)
        index = build_index(keys)
        snapshot = EpochManager(index).current()
        scheduler = MicroBatchScheduler(max_batch=10_000, max_wait=0.0)
        requests = make_range_requests(rng, keys, 19, span=24)
        for request in requests:
            scheduler.submit(request)
        results = scheduler.flush(snapshot)
        klass = LaunchClass(kind="range", mode="all")
        for result, request in zip(results, requests):
            assert_request_matches_solo(result, request, snapshot, klass)

    def test_range_first_k(self):
        rng = np.random.default_rng(7)
        keys = dense_shuffled_keys(2048, seed=8)
        index = build_index(keys)
        snapshot = EpochManager(index).current()
        scheduler = MicroBatchScheduler(max_batch=10_000, max_wait=0.0)
        requests = make_range_requests(rng, keys, 15, span=32, limit=4)
        for request in requests:
            scheduler.submit(request)
        results = scheduler.flush(snapshot)
        klass = LaunchClass(kind="range", mode="first_k", limit=4)
        for result, request in zip(results, requests):
            assert_request_matches_solo(result, request, snapshot, klass)
            assert result.hits_per_lookup().max() <= 4

    def test_mixed_window_demuxes_every_class(self):
        """One window holding all four classes: one launch per class, demux
        still solo-identical, results in submission order."""
        rng = np.random.default_rng(9)
        keys = dense_shuffled_keys(2048, seed=10)
        index = build_index(keys)
        snapshot = EpochManager(index).current()
        scheduler = MicroBatchScheduler(max_batch=10_000, max_wait=0.0)
        points = make_point_requests(rng, keys, 6)
        ranges = make_range_requests(rng, keys, 5, span=16, start_id=100)
        limited = make_range_requests(rng, keys, 4, span=16, limit=2, start_id=200)
        interleaved = []
        for triple in zip(points, ranges, limited):
            interleaved.extend(triple)
        for request in interleaved:
            scheduler.submit(request)
        results = scheduler.flush(snapshot)
        assert [r.request_id for r in results] == [r.request_id for r in interleaved]
        assert scheduler.stats.launches == 3  # one per class
        for result, request in zip(results, interleaved):
            if request.kind == "point":
                klass = LaunchClass(kind="point", mode=snapshot.point_mode)
            elif request.limit is None:
                klass = LaunchClass(kind="range", mode="all")
            else:
                klass = LaunchClass(kind="range", mode="first_k", limit=request.limit)
            assert_request_matches_solo(result, request, snapshot, klass)


class TestBatchingPolicy:
    def test_window_respects_max_batch_but_never_splits_requests(self):
        keys = dense_shuffled_keys(512, seed=11)
        index = build_index(keys)
        scheduler = MicroBatchScheduler(max_batch=8, max_wait=0.0)
        sizes = [3, 3, 3, 9, 1]
        for i, n in enumerate(sizes):
            scheduler.submit(
                ServeRequest(
                    request_id=i + 1, kind="point", queries=keys[:n]
                )
            )
        w1 = scheduler.take_window()
        assert [r.request_id for r in w1] == [1, 2]  # 3+3, +3 would exceed 8
        w2 = scheduler.take_window()
        assert [r.request_id for r in w2] == [3]  # 3, +9 would exceed
        w3 = scheduler.take_window()
        assert [r.request_id for r in w3] == [4]  # oversized request goes alone
        w4 = scheduler.take_window()
        assert [r.request_id for r in w4] == [5]
        assert scheduler.take_window() == []
        assert scheduler.pending_queries == 0

    def test_ready_by_size_and_wait(self):
        keys = dense_shuffled_keys(256, seed=12)
        scheduler = MicroBatchScheduler(max_batch=4, max_wait=0.5)
        assert not scheduler.ready(now=100.0)
        scheduler.submit(
            ServeRequest(request_id=1, kind="point", queries=keys[:1], arrival=1.0)
        )
        assert not scheduler.ready(now=1.2)
        assert scheduler.ready(now=1.5)  # wait deadline
        scheduler.submit(
            ServeRequest(request_id=2, kind="point", queries=keys[:3], arrival=1.1)
        )
        assert scheduler.ready(now=1.1)  # size bound reached

    def test_invalid_requests_rejected(self):
        with pytest.raises(ValueError, match="at least one query"):
            ServeRequest(request_id=1, kind="point", queries=np.empty(0, np.uint64))
        with pytest.raises(ValueError, match="unknown request kind"):
            ServeRequest(request_id=1, kind="scan", queries=np.array([1], np.uint64))
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatchScheduler(max_batch=0, max_wait=0.0)
        with pytest.raises(ValueError, match="max_wait"):
            MicroBatchScheduler(max_batch=1, max_wait=-1.0)


class TestEngineGroupValidation:
    def test_ray_groups_shape_mismatch(self):
        keys = dense_shuffled_keys(128, seed=13)
        index = build_index(keys)
        codec = index.codec
        rays = codec.point_ray_batch(keys[:4], index.config.point_ray_mode)
        with pytest.raises(ValueError, match="one group per ray"):
            index.pipeline.engine.trace(rays, ray_groups=np.zeros(3, np.int64))
        with pytest.raises(ValueError, match="non-negative"):
            index.pipeline.engine.trace(rays, ray_groups=np.full(4, -1, np.int64))

    def test_group_counters_reset_between_traces(self):
        keys = dense_shuffled_keys(128, seed=14)
        index = build_index(keys)
        engine = index.pipeline.engine
        rays = index.codec.point_ray_batch(keys[:4], index.config.point_ray_mode)
        engine.trace(rays, ray_groups=np.zeros(4, np.int64))
        assert engine.group_counters is not None
        assert len(engine.group_counters) == 1
        engine.trace(rays)
        assert engine.group_counters is None
