"""Property-based tests (hypothesis) for the core invariants.

These target the parts of the system where a single wrong edge case silently
corrupts results: the key codecs, the order-preserving type mappings, the BVH
+ traversal pair, and the cross-index agreement on arbitrary workloads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import GpuBPlusTree, SortedArrayIndex, WarpCoreHashTable
from repro.core import KeyDecomposition, KeyMode, RXConfig, RXIndex
from repro.core.keycodec import ExtendedCodec, NaiveCodec, ThreeDCodec
from repro.core.typemap import (
    float64_to_uint64,
    int64_to_uint64,
    uint64_to_float64,
    uint64_to_int64,
)
from repro.rtx.bvh import BvhBuildOptions, build_bvh
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.traversal import TraversalEngine
from repro.workloads.table import SecondaryIndexWorkload

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


key_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=200
).map(lambda values: np.array(values, dtype=np.uint64))

unique_key_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=200, unique=True
).map(lambda values: np.array(values, dtype=np.uint64))


class TestTypemapProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), min_size=1, max_size=100))
    def test_int64_mapping_round_trips_and_preserves_order(self, values):
        arr = np.array(values, dtype=np.int64)
        mapped = int64_to_uint64(arr)
        assert np.array_equal(uint64_to_int64(mapped), arr)
        order = np.argsort(arr, kind="stable")
        assert np.array_equal(np.argsort(mapped, kind="stable"), order)

    @SETTINGS
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=2,
            max_size=100,
        )
    )
    def test_float64_mapping_preserves_order(self, values):
        arr = np.array(values, dtype=np.float64)
        mapped = float64_to_uint64(arr)
        restored = uint64_to_float64(mapped)
        # Round trip (−0.0 and 0.0 map to distinct integers but compare equal).
        assert np.all((restored == arr) | (np.abs(restored - arr) == 0.0))
        sorted_by_map = arr[np.argsort(mapped, kind="stable")]
        assert np.all(np.diff(sorted_by_map) >= 0)


class TestCodecProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=2**23 - 1), min_size=1, max_size=100))
    def test_naive_codec_is_exact_below_limit(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        points, _ = NaiveCodec().encode_points(arr)
        assert np.array_equal(points[:, 0].astype(np.uint64), arr)

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=2**29 - 1), min_size=2, max_size=100, unique=True))
    def test_extended_codec_is_order_preserving_and_injective(self, keys):
        arr = np.array(sorted(keys), dtype=np.uint64)
        coords = ExtendedCodec().encode_points(arr)[0][:, 0].astype(np.float64)
        assert np.all(np.diff(coords) > 0)

    @SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=100),
        st.sampled_from([(23, 23, 18), (20, 22, 22), (23, 0, 0), (16, 23, 23)]),
    )
    def test_three_d_codec_round_trips(self, keys, split):
        x_bits, y_bits, z_bits = split
        decomposition = KeyDecomposition(x_bits, y_bits, z_bits)
        arr = np.array(keys, dtype=np.uint64) & np.uint64(decomposition.max_key)
        codec = ThreeDCodec(decomposition)
        assert np.array_equal(codec.recompose(*codec.decompose(arr)), arr)


class TestBvhTraversalProperties:
    @SETTINGS
    @given(unique_key_arrays, st.sampled_from(["lbvh", "sah", "median"]))
    def test_point_rays_find_exactly_the_existing_keys(self, keys, builder):
        # Build a scene from arbitrary unique keys (clipped to the naive range
        # so coordinates are exact) and fire one perpendicular ray per key
        # plus one per definitely-absent key.
        keys = np.unique(keys % np.uint64(2**23))
        points = np.column_stack([keys, np.zeros_like(keys), np.zeros_like(keys)]).astype(np.float64)
        buffer = TriangleBuffer(make_triangle_vertices(points))
        bvh = build_bvh(buffer, BvhBuildOptions(builder=builder))
        engine = TraversalEngine(bvh, buffer)

        absent = keys.astype(np.float64) + 0.5
        xs = np.concatenate([keys.astype(np.float64), absent])
        rays = RayBatch(
            origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
            directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
            tmin=0.0,
            tmax=1.0,
        )
        result = engine.trace(rays)
        hits_per_ray = result.hits_per_ray()
        assert np.all(hits_per_ray[: keys.shape[0]] == 1)
        assert np.all(hits_per_ray[keys.shape[0]:] == 0)
        # And every reported hit maps the ray back to its own key's rowID.
        for ray, prim in zip(result.ray_indices, result.prim_indices):
            if ray < keys.shape[0]:
                assert keys[prim] == keys[ray]


class TestIndexAgreementProperties:
    @SETTINGS
    @given(key_arrays, st.integers(min_value=1, max_value=64))
    def test_rx_equals_sorted_array_on_point_lookups(self, keys, num_queries):
        rng = np.random.default_rng(0)
        queries = np.concatenate(
            [
                keys[rng.integers(0, keys.shape[0], size=num_queries)],
                rng.integers(0, 2**32, size=4, dtype=np.uint64),
            ]
        )
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        rx = RXIndex()
        sa = SortedArrayIndex(key_bytes=8)
        rx.build(workload.keys, workload.values)
        sa.build(workload.keys, workload.values)
        rx_run = rx.point_lookup(queries)
        sa_run = sa.point_lookup(queries)
        assert rx_run.aggregate == sa_run.aggregate == workload.reference_point_aggregate()
        assert np.array_equal(rx_run.hits_per_lookup, sa_run.hits_per_lookup)

    @SETTINGS
    @given(unique_key_arrays, st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=64))
    def test_rx_equals_btree_on_range_lookups(self, keys, num_queries, span):
        rng = np.random.default_rng(1)
        lowers = keys[rng.integers(0, keys.shape[0], size=num_queries)]
        uppers = np.minimum(lowers + np.uint64(span), np.uint64(2**32 - 1))
        workload = SecondaryIndexWorkload.from_keys(keys, range_lowers=lowers, range_uppers=uppers)
        rx = RXIndex()
        btree = GpuBPlusTree()
        rx.build(workload.keys, workload.values)
        btree.build(workload.keys, workload.values)
        rx_run = rx.range_lookup(lowers, uppers)
        bt_run = btree.range_lookup(lowers, uppers)
        assert rx_run.aggregate == bt_run.aggregate == workload.reference_range_aggregate()
        assert np.array_equal(rx_run.hits_per_lookup, bt_run.hits_per_lookup)

    @SETTINGS
    @given(key_arrays)
    def test_hash_table_equals_reference_on_hits_and_misses(self, keys):
        rng = np.random.default_rng(2)
        queries = np.concatenate([keys[:32], rng.integers(0, 2**32, size=8, dtype=np.uint64)])
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        table = WarpCoreHashTable(key_bytes=8)
        table.build(workload.keys, workload.values)
        run = table.point_lookup(queries)
        assert run.aggregate == workload.reference_point_aggregate()
        assert np.array_equal(run.hits_per_lookup, workload.reference_point_hits())


class TestConfigProperties:
    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=23),
        st.integers(min_value=0, max_value=23),
        st.integers(min_value=0, max_value=18),
    )
    def test_any_valid_decomposition_round_trips(self, x_bits, y_bits, z_bits):
        decomposition = KeyDecomposition(x_bits, y_bits, z_bits)
        codec = ThreeDCodec(decomposition)
        keys = np.array([0, decomposition.max_key // 2, decomposition.max_key], dtype=np.uint64)
        assert np.array_equal(codec.recompose(*codec.decompose(keys)), keys)

    def test_rx_rejects_keys_beyond_decomposition(self):
        config = RXConfig(decomposition=KeyDecomposition(8, 8, 0))
        index = RXIndex(config)
        with pytest.raises(ValueError):
            index.build(np.array([2**20], dtype=np.uint64))

    def test_naive_mode_config_round_trip(self):
        index = RXIndex(RXConfig(key_mode=KeyMode.NAIVE))
        keys = np.array([1, 2, 3], dtype=np.uint64)
        index.build(keys)
        run = index.point_lookup(keys)
        assert run.hits_per_lookup.tolist() == [1, 1, 1]
