"""Integration tests: every experiment runs and preserves the paper's shape.

Each test runs one of the per-figure experiment modules at the ``tiny``
simulation scale and asserts the *qualitative* claim the paper makes for that
figure or table (orderings, monotonicity, crossovers) rather than absolute
numbers.
"""

import numpy as np
import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ablation_builders,
    chaos_serve,
    fig03_key_modes,
    fig06_ray_modes,
    fig07_primitives,
    fig08_decomposition,
    fig10_scaling,
    fig11_multiplicity,
    fig12_sorting,
    fig13_batching,
    fig14_hitrate,
    fig15_keysize,
    fig16_skew,
    fig17_range,
    fig18_hardware,
    paging_scan,
    restart,
    table03_range_origin,
    table04_updates,
    table05_warps,
    table06_memory,
    table07_skew_profile,
)

SCALE = "tiny"


def test_every_experiment_is_registered():
    assert len(ALL_EXPERIMENTS) == 23


def test_every_experiment_produces_text():
    # A cheap end-to-end check over the registry itself.
    result = table06_memory.run(scale=SCALE)
    assert "table6" in result.to_text()


class TestFig3KeyModes:
    def test_naive_mode_not_available_beyond_2_23(self):
        result = fig03_key_modes.run(scale=SCALE)
        naive = result.series_by_label("naive")
        assert naive.y[-1] is None      # 2^26 keys
        assert naive.y[0] is not None   # 2^21 keys

    def test_extended_mode_degrades_for_large_key_ranges(self):
        result = fig03_key_modes.run(scale=SCALE)
        ext = result.series_by_label("ext")
        three_d = result.series_by_label("3d")
        # 3D Mode stays flat; Extended Mode blows up once the key-range ratio
        # grows large enough (the last sweep point), and is already worse than
        # 3D Mode at the paper's largest build size.
        assert ext.y[-1] > 3 * three_d.y[-1]
        assert ext.y[-2] > 1.1 * three_d.y[-2]
        assert max(three_d.y) < 3 * min(three_d.y)

    def test_stride_shifts_extended_mode_onset(self):
        result = fig03_key_modes.run_fig3b(scale=SCALE)
        stride1 = result.series_by_label("ext stride 1")
        stride4 = result.series_by_label("ext stride 4")
        # With stride 4 the key-range ratio is 4x larger, so the degradation
        # sets in at smaller build sizes (compare one sweep point below the
        # stride-1 onset).
        assert stride4.y[-3] > stride1.y[-3] * 1.5


class TestFig6RayModes:
    def test_perpendicular_beats_parallel_from_zero(self):
        result = fig06_ray_modes.run(scale=SCALE)
        for mode in ("naive", "ext", "3d"):
            parallel = result.series_by_label(f"{mode} / parallel from zero")
            perpendicular = result.series_by_label(f"{mode} / perpendicular")
            pairs = [
                (p, q) for p, q in zip(parallel.y, perpendicular.y) if p is not None and q is not None
            ]
            assert all(par > perp for par, perp in pairs)


class TestTable3RangeOrigin:
    def test_offset_origin_wins_everywhere(self):
        result = table03_range_origin.run(scale=SCALE)
        offset = result.series_by_label("parallel from offset")
        zero = result.series_by_label("parallel from zero")
        assert all(z > o for o, z in zip(offset.y, zero.y))


class TestFig7Primitives:
    def test_triangles_fastest_for_lookups(self):
        result = fig07_primitives.run(scale=SCALE, panel="lookup")
        tri = result.series_by_label("triangle (compacted)").y[-1]
        sphere = result.series_by_label("sphere (compacted)").y[-1]
        aabb = result.series_by_label("aabb (compacted)").y[-1]
        assert tri < sphere and tri < aabb

    def test_compaction_changes_lookup_time_only_marginally(self):
        result = fig07_primitives.run(scale=SCALE, panel="lookup")
        compacted = result.series_by_label("triangle (compacted)").y[-1]
        uncompacted = result.series_by_label("triangle (uncompacted)").y[-1]
        assert compacted == pytest.approx(uncompacted, rel=0.15)

    def test_memory_uncompacted_triangles_largest(self):
        result = fig07_primitives.run(scale=SCALE, panel="memory")
        last = {s.label: s.y[-1] for s in result.series}
        assert last["triangle (uncompacted)"] == max(last.values())
        assert last["sphere (compacted)"] > last["triangle (compacted)"]

    def test_build_panel_monotone_in_keys(self):
        result = fig07_primitives.run(scale=SCALE, panel="build")
        for series in result.series:
            assert series.y[-1] > series.y[0]

    def test_invalid_panel_rejected(self):
        with pytest.raises(ValueError):
            fig07_primitives.run(scale=SCALE, panel="energy")


class TestFig8Fig9Decomposition:
    def test_z_heavy_decompositions_slow_point_lookups(self):
        result = fig08_decomposition.run(scale=SCALE)
        series = result.series[0]
        by_label = dict(zip(series.x, series.y))
        assert by_label["16+0+10"] >= by_label["16+10+0"]

    def test_more_x_bits_speed_up_range_lookups(self):
        result = fig08_decomposition.run_fig9(scale=SCALE)
        for series in result.series:
            assert series.y[-1] <= series.y[0]


class TestTable4Updates:
    def test_update_time_independent_of_swaps_and_cheaper_than_rebuild(self):
        result = table04_updates.run(scale=SCALE)
        update = result.series_by_label("swap adjacent positions: update")
        rebuild = result.series_by_label("full rebuild (update / lookups / total)")
        assert max(update.y) == pytest.approx(min(update.y), rel=0.01)
        assert rebuild.y[0] > 2 * update.y[0]

    def test_position_swaps_degrade_lookups_but_key_swaps_do_not(self):
        result = table04_updates.run(scale=SCALE)
        position = result.series_by_label("swap adjacent positions: lookups")
        key = result.series_by_label("swap adjacent keys: lookups")
        assert position.y[-1] > 2 * position.y[0]
        assert max(key.y) == pytest.approx(min(key.y), rel=0.05)

    def test_delta_shard_updates_scale_with_dirty_shards_not_keys(self):
        result = table04_updates.run(scale=SCALE)
        update = result.series_by_label("clustered key swaps (delta-shard): update")
        lookups = result.series_by_label("clustered key swaps (delta-shard): lookups")
        rebuild = result.series_by_label("full rebuild (update / lookups / total)")
        dirty = update.extra["dirty_shards"]
        # Dirty shards (and with them the update cost) grow with the swap
        # fraction, while a small clustered update stays well below a full
        # rebuild and lookups keep rebuild quality (flat across fractions).
        assert dirty[0] <= dirty[-1]
        assert update.y[0] <= update.y[-1]
        assert update.y[0] < 0.5 * rebuild.y[0]
        assert max(lookups.y) == pytest.approx(min(lookups.y), rel=0.05)


class TestFig10Scaling:
    def test_throughput_saturates_with_many_lookups(self):
        result = fig10_scaling.run(scale=SCALE)
        rx = result.series_by_label("RX")
        assert rx.y[-1] > rx.y[0]

    def test_rx_wins_small_key_sets_and_loses_large_ones(self):
        result = fig10_scaling.run_fig10b(scale=SCALE)
        throughput = {s.label: s.y for s in result.series}
        #

        assert throughput["RX"][0] == max(s[0] for s in throughput.values())
        assert throughput["RX"][-1] < throughput["HT"][-1]
        assert throughput["RX"][-1] < throughput["B+"][-1]

    def test_rx_build_is_most_expensive(self):
        result = fig10_scaling.run_fig10c(scale=SCALE)
        last = {s.label: s.y[-1] for s in result.series if "unsorted" in s.label}
        assert last["RX (unsorted inserts)"] == max(last.values())

    def test_fig10d_measures_sharded_builds(self):
        result = fig10_scaling.run_fig10d(scale=SCALE)
        single = result.series_by_label("single tree")
        forest = result.series_by_label("forest (1 worker)")
        assert all(v > 0 for v in single.y + forest.y)
        assert len(result.series) >= 2


class TestTable5Warps:
    def test_warps_and_bandwidth_increase_with_batch_size(self):
        result = table05_warps.run(scale=SCALE)
        warps = result.series_by_label("active warps per SM").y
        bandwidth = result.series_by_label("memory BW").y
        assert all(a <= b for a, b in zip(warps, warps[1:]))
        assert all(a <= b for a, b in zip(bandwidth, bandwidth[1:]))
        assert warps[-1] <= 16.0


class TestTable6Memory:
    def test_paper_relationships(self):
        result = table06_memory.run(scale=SCALE)
        final = dict(zip(result.series[0].x, result.series[0].y))
        overhead = dict(zip(result.series[1].x, result.series[1].y))
        assert final["RX"] == max(final.values())
        assert final["SA"] == min(final.values())
        assert final["RX"] > 1.8 * final["B+"]
        assert overhead["HT"] == 0.0
        assert overhead["RX"] == max(overhead.values())


class TestFig11Multiplicity:
    def test_duplicates_reduce_normalised_lookup_time(self):
        result = fig11_multiplicity.run(scale=SCALE)
        for series in result.series:
            assert series.y[-1] < series.y[0]


class TestFig12Sorting:
    def test_sorted_lookups_help_and_sorted_inserts_do_not(self):
        result = fig12_sorting.run(scale=SCALE)
        for name in ("HT", "B+", "SA", "RX"):
            series = dict(zip(result.series_by_label(name).x, result.series_by_label(name).y))
            assert series["sorted lookups"] < series["both unsorted"]
            assert series["sorted inserts"] == pytest.approx(series["both unsorted"], rel=0.05)

    def test_sort_phase_is_cheap(self):
        result = fig12_sorting.run(scale=SCALE)
        sort = dict(zip(result.series_by_label("sort").x, result.series_by_label("sort").y))
        rx = dict(zip(result.series_by_label("RX").x, result.series_by_label("RX").y))
        assert sort["sorted lookups"] < rx["both unsorted"]


class TestFig13Batching:
    def test_many_small_batches_are_slow(self):
        result = fig13_batching.run(scale=SCALE)
        for series in result.series:
            assert series.y[-1] > series.y[0]


class TestFig14HitRate:
    def test_rx_speeds_up_with_misses_and_overtakes_tree_indexes(self):
        result = fig14_hitrate.run(scale=SCALE)
        rx = result.series_by_label("RX").y
        btree = result.series_by_label("B+").y
        sa = result.series_by_label("SA").y
        assert rx[-1] < 0.45 * rx[0]          # ~3x faster at hit rate 0
        assert rx[0] > btree[0]               # slower when everything hits
        assert rx[-1] < btree[-1]             # faster when everything misses
        assert rx[-1] < sa[-1]


class TestFig15KeySize:
    def test_rx_insensitive_to_key_size_but_baselines_grow(self):
        lookup = fig15_keysize.run(scale=SCALE, panel="lookup")
        rx = lookup.series_by_label("RX").y
        sa = lookup.series_by_label("SA").y
        ht = lookup.series_by_label("HT").y
        assert rx[1] == pytest.approx(rx[0], rel=0.1)
        assert ht[1] > ht[0]
        assert sa[1] >= sa[0]
        memory = fig15_keysize.run(scale=SCALE, panel="memory")
        assert memory.series_by_label("B+").y[1] is None
        assert memory.series_by_label("HT").y[1] > memory.series_by_label("HT").y[0]
        assert memory.series_by_label("RX").y[1] == pytest.approx(
            memory.series_by_label("RX").y[0], rel=0.05
        )


class TestFig16Skew:
    def test_skew_helps_everyone_and_rx_overtakes_order_based_indexes(self):
        result = fig16_skew.run(scale=SCALE)
        for name in ("HT", "B+", "SA", "RX"):
            series = result.series_by_label(name).y
            assert series[-1] < series[0]
        rx = result.series_by_label("RX").y
        btree = result.series_by_label("B+").y
        assert rx[0] > btree[0]
        assert rx[-1] < btree[-1]


class TestTable7SkewProfile:
    def test_cache_hit_rate_rises_and_traffic_falls(self):
        result = table07_skew_profile.run(scale=SCALE)
        rx_hits = result.series_by_label("RX L2 hit rate").y
        rx_bytes = result.series_by_label("RX memory read").y
        assert all(a <= b for a, b in zip(rx_hits, rx_hits[1:]))
        assert all(a >= b for a, b in zip(rx_bytes, rx_bytes[1:]))

    def test_rx_executes_far_fewer_instructions_than_btree(self):
        result = table07_skew_profile.run(scale=SCALE)
        rx = result.series_by_label("RX instructions").y[0]
        btree = result.series_by_label("B+ instructions").y[0]
        assert btree > 10 * rx


class TestFig17Range:
    def test_btree_wins_ranges_and_rx_normalised_time_decreases(self):
        result = fig17_range.run(scale=SCALE)
        btree = result.series_by_label("B+").y
        rx = result.series_by_label("RX").y
        sa = result.series_by_label("SA").y
        assert btree[-1] < rx[-1]
        assert rx[-1] < rx[0]
        # RX loses ground against SA as the ranges widen ("RX initially
        # outperforms SA for small range lookups, but then quickly loses its
        # advantage") — assert the relative trend.
        assert rx[0] / sa[0] < rx[-1] / sa[-1]
        assert "traversal" in result.notes

    def test_limited_variant_pushes_the_budget_into_every_probe(self):
        result = fig17_range.run_limited(scale=SCALE, limit=8)
        assert result.experiment_id == "fig17_limited"
        rx = result.series_by_label("RX").y
        rx_unlimited = result.series_by_label("RX (no limit)").y
        # With the budget pushed down RX never pays more than the all-hits
        # trace; once the limit binds (span > 8) the widest span must show a
        # real saving.  (The dense fig17 column builds a balanced BVH whose
        # leaves sit on one level, so the cut shows up in the per-hit work,
        # not the descent — the big traversal wins live in perf_smoke's
        # clustered first_k scenario.)
        assert all(lim <= full * 1.001 for lim, full in zip(rx, rx_unlimited))
        assert rx[-1] < 0.99 * rx_unlimited[-1]
        # Every index returned exactly min(span, 8) rows per lookup — the
        # run itself raises otherwise — so the series are comparable.
        assert set(result.series_by_label("B+").x) == set(fig17_range.QUALIFYING_ENTRIES)


class TestFig18Hardware:
    def test_newer_gpus_are_faster_and_rx_gains_most_when_sorted(self):
        result = fig18_hardware.run(scale=SCALE)
        for series in result.series:
            values = dict(zip(series.x, series.y))
            assert values["RTX 4090"] < values["RTX 2080 Ti"]
        factors = fig18_hardware.improvement_factors(result)
        sorted_factors = {k: v for k, v in factors.items() if "sorted" in k and "unsorted" not in k}
        assert max(sorted_factors, key=sorted_factors.get).startswith("RX")


class TestChaosServe:
    def test_faults_burn_goodput_but_the_clean_point_is_error_free(self):
        result = chaos_serve.run(scale=SCALE)
        goodput = result.series_by_label("goodput").y
        errors = result.series_by_label("error rate").y
        retries = result.series_by_label("launch retries").y
        # Intensity 0 is the clean baseline: no errors, no retries.
        assert errors[0] == 0.0
        assert retries[0] == 0.0
        # At the top intensity faults visibly burn the error budget (explicit
        # errors, not silent drops) and goodput degrades below the baseline.
        assert errors[-1] > 0.0
        assert retries[-1] > 0.0
        assert goodput[-1] < goodput[0]
        assert all(v > 0.0 for v in goodput)


class TestPagingScan:
    def test_cursor_resume_is_flat_while_prefix_rescan_grows(self):
        result = paging_scan.run(scale=SCALE)
        for name in ("RX", "SA", "B+"):
            resume = result.series_by_label(f"{name} (cursor resume)").y
            rescan = result.series_by_label(f"{name} (prefix rescan)").y
            # Page 0 costs the same either way (nothing to resume or rescan).
            assert resume[0] == rescan[0]
            # Rescan cost grows with page depth; resume cost does not.
            assert rescan[-1] > 3 * rescan[0]
            assert max(resume) <= max(resume[0], rescan[0]) * 1.25
            # At the deepest page, resuming beats rescanning the prefix.
            assert rescan[-1] > 3 * resume[-1]


class TestRestart:
    def test_all_restart_paths_are_timed_and_identity_gated(self):
        # run() itself asserts bit-identical BVH arrays and lookup answers
        # before timing each point; here we pin the shape of what it reports.
        result = restart.run(scale=SCALE)
        rebuild = result.series_by_label("full rebuild")
        mmap_load = result.series_by_label("cold load (mmap)")
        heap_load = result.series_by_label("cold load (heap)")
        save = result.series_by_label("save")
        assert len(rebuild.y) == len(mmap_load.y) == len(heap_load.y) == len(save.y)
        for series in (rebuild, mmap_load, heap_load, save):
            assert all(v > 0.0 for v in series.y)
        # Rebuild cost grows with the key count; the snapshot on disk does too.
        assert rebuild.y[-1] > rebuild.y[0]
        sizes = mmap_load.extra["bytes_on_disk"]
        assert sizes == sorted(sizes) and sizes[0] > 0


class TestAblation:
    def test_all_builders_produce_comparable_lookup_costs(self):
        result = ablation_builders.run(scale=SCALE)
        times = result.series_by_label("lookup time per builder").y
        assert max(times) < 3 * min(times)

    def test_leaf_size_sweep_runs(self):
        result = ablation_builders.run(scale=SCALE)
        assert len(result.series_by_label("lookup time per leaf size").y) == 5
