"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    SecondaryIndexWorkload,
    dense_shuffled_keys,
    keys_with_multiplicity,
    point_lookups,
    point_lookups_with_hit_rate,
    range_lookups,
    sort_lookups,
    sparse_uniform_keys,
    split_batches,
    strided_keys,
    swap_adjacent_keys,
    swap_adjacent_positions,
    zipf_keys,
    zipf_point_lookups,
    zipf_sample,
)
from repro.workloads.lookups import miss_keys
from repro.workloads.zipf import zipf_probabilities


class TestKeyGenerators:
    def test_dense_keys_are_a_permutation(self):
        keys = dense_shuffled_keys(100)
        assert sorted(keys.tolist()) == list(range(100))

    def test_dense_keys_are_shuffled(self):
        keys = dense_shuffled_keys(1000, seed=0)
        assert not np.array_equal(keys, np.arange(1000))

    def test_dense_keys_deterministic_per_seed(self):
        assert np.array_equal(dense_shuffled_keys(64, seed=3), dense_shuffled_keys(64, seed=3))

    def test_dense_keys_start_offset(self):
        keys = dense_shuffled_keys(10, start=100)
        assert keys.min() == 100 and keys.max() == 109

    def test_strided_keys_value_range(self):
        keys = strided_keys(100, stride=4)
        assert keys.max() == 4 * 99
        assert set(keys.tolist()) == set(range(0, 400, 4))

    def test_strided_keys_invalid_stride(self):
        with pytest.raises(ValueError):
            strided_keys(10, stride=0)

    def test_sparse_keys_unique_and_within_domain(self):
        keys = sparse_uniform_keys(500, key_bits=20)
        assert np.unique(keys).shape[0] == 500
        assert keys.max() < 2**20

    def test_sparse_keys_domain_too_small(self):
        with pytest.raises(ValueError):
            sparse_uniform_keys(100, key_bits=5)

    def test_multiplicity_generator(self):
        keys = keys_with_multiplicity(50, multiplicity=4)
        values, counts = np.unique(keys, return_counts=True)
        assert values.shape[0] == 50
        assert (counts == 4).all()

    def test_multiplicity_validation(self):
        with pytest.raises(ValueError):
            keys_with_multiplicity(10, multiplicity=0)

    def test_zipf_keys_shape(self):
        keys = zipf_keys(256, coefficient=1.5)
        assert keys.shape == (256,)

    def test_empty_key_count_rejected(self):
        with pytest.raises(ValueError):
            dense_shuffled_keys(0)


class TestLookupGenerators:
    def test_point_lookups_drawn_from_keys(self):
        keys = dense_shuffled_keys(128)
        queries = point_lookups(keys, 64)
        assert np.isin(queries, keys).all()

    def test_hit_rate_controlled(self):
        keys = dense_shuffled_keys(512)
        queries = point_lookups_with_hit_rate(keys, 400, hit_rate=0.25, key_bits=32)
        hits = np.isin(queries, keys).mean()
        assert hits == pytest.approx(0.25, abs=0.02)

    def test_hit_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            point_lookups_with_hit_rate(dense_shuffled_keys(16), 8, hit_rate=1.5)

    def test_miss_keys_vectorised_membership(self):
        """The batched searchsorted membership test must behave exactly like
        the per-draw set lookup it replaced, including at domain edges."""
        rng = np.random.default_rng(77)
        keys = rng.integers(0, 2**10, size=900).astype(np.uint64)
        for key_bits in (10, 32):
            misses = miss_keys(keys, 500, key_bits=key_bits, seed=3)
            assert misses.shape == (500,)
            assert not np.isin(misses, keys).any()
            assert misses.max() <= np.uint64((1 << key_bits) - 1)

    def test_miss_keys_from_empty_key_column(self):
        misses = miss_keys(np.array([], dtype=np.uint64), 5, key_bits=10, seed=3)
        assert misses.shape == (5,)

    def test_miss_keys_are_absent(self):
        keys = dense_shuffled_keys(256)
        misses = miss_keys(keys, 64, key_bits=32)
        assert not np.isin(misses, keys).any()

    def test_outside_domain_misses_above_max_key(self):
        keys = dense_shuffled_keys(64)
        misses = miss_keys(keys, 16, outside_domain=True)
        assert misses.min() > keys.max()

    def test_zipf_lookups_prefer_few_keys(self):
        keys = dense_shuffled_keys(1024)
        skewed = zipf_point_lookups(keys, 2048, coefficient=1.8, seed=1)
        uniform = zipf_point_lookups(keys, 2048, coefficient=0.0, seed=1)
        assert np.unique(skewed).shape[0] < np.unique(uniform).shape[0]

    def test_range_lookups_span(self):
        keys = dense_shuffled_keys(512)
        lowers, uppers = range_lookups(keys, 32, span=16)
        assert np.all(uppers - lowers == 15)

    def test_range_lookups_invalid_span(self):
        with pytest.raises(ValueError):
            range_lookups(dense_shuffled_keys(16), 4, span=0)

    def test_sort_lookups(self):
        queries = np.array([5, 1, 9], dtype=np.uint64)
        assert sort_lookups(queries).tolist() == [1, 5, 9]

    def test_split_batches_covers_everything(self):
        queries = np.arange(100, dtype=np.uint64)
        batches = split_batches(queries, 7)
        assert sum(len(b) for b in batches) == 100

    def test_split_batches_validation(self):
        with pytest.raises(ValueError):
            split_batches(np.arange(4), 0)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        probs = zipf_probabilities(100, 1.3)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        probs = zipf_probabilities(50, 1.0)
        assert np.all(np.diff(probs) <= 0)

    def test_zero_coefficient_is_uniform(self):
        samples = zipf_sample(100, 10_000, 0.0, np.random.default_rng(0))
        counts = np.bincount(samples, minlength=100)
        assert counts.min() > 50

    def test_high_coefficient_concentrates_mass(self):
        samples = zipf_sample(1000, 10_000, 2.0, np.random.default_rng(0))
        top_share = (samples < 10).mean()
        assert top_share > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)


class TestUpdateWorkloads:
    def test_swap_positions_preserves_multiset(self):
        keys = dense_shuffled_keys(128)
        updated = swap_adjacent_positions(keys, 32)
        assert sorted(updated.tolist()) == sorted(keys.tolist())
        assert not np.array_equal(updated, keys)

    def test_swap_keys_preserves_multiset(self):
        keys = dense_shuffled_keys(128)
        updated = swap_adjacent_keys(keys, 32)
        assert sorted(updated.tolist()) == sorted(keys.tolist())
        assert not np.array_equal(updated, keys)

    def test_swap_keys_changes_values_by_one_on_dense_sets(self):
        keys = dense_shuffled_keys(256)
        updated = swap_adjacent_keys(keys, 64)
        delta = np.abs(updated.astype(np.int64) - keys.astype(np.int64))
        assert delta[delta > 0].max() == 1

    def test_too_many_swaps_rejected(self):
        with pytest.raises(ValueError):
            swap_adjacent_positions(dense_shuffled_keys(10), 6)
        with pytest.raises(ValueError):
            swap_adjacent_keys(dense_shuffled_keys(10), 6)


class TestSecondaryIndexWorkload:
    def test_reference_answers_consistent(self, small_workload):
        assert small_workload.reference_point_hits().shape[0] == small_workload.num_point_lookups
        assert small_workload.reference_point_aggregate() > 0
        assert small_workload.reference_range_aggregate() > 0

    def test_reference_rows_point_to_matching_keys(self, small_workload):
        rows = small_workload.reference_point_rows()
        hits = small_workload.reference_point_hits() > 0
        matched = rows[hits].astype(np.int64)
        assert np.array_equal(
            small_workload.keys[matched], small_workload.point_queries[hits]
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SecondaryIndexWorkload(keys=np.arange(4, dtype=np.uint64), values=np.arange(3, dtype=np.uint64))

    def test_from_keys_attaches_values(self):
        workload = SecondaryIndexWorkload.from_keys(dense_shuffled_keys(32), label="unit")
        assert workload.values.shape == workload.keys.shape
        assert workload.metadata["label"] == "unit"

    def test_empty_query_reference(self):
        workload = SecondaryIndexWorkload.from_keys(dense_shuffled_keys(8))
        assert workload.reference_point_aggregate() == 0
        assert workload.reference_range_aggregate() == 0
