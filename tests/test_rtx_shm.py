"""Shared-memory build backend: block lifecycle and failure paths.

The bit-identity of the shm backend's *output* is pinned by the forest suite
(backend axis) and the differential harness; this suite pins the part no
array comparison can see — that every ``/dev/shm`` block the backend creates
is unlinked again, no matter how the build ends:

* normal builds and delta chains drain back to zero live blocks once the
  forests are garbage collected (epoch snapshots may pin the *mapping*, but
  never the name),
* a worker exception mid-build — serial or pooled — releases every block
  eagerly before the error propagates (probed via ``SharedMemory`` name
  reopening, which must raise ``FileNotFoundError``),
* a failed delta update drops the cached state so the next update falls
  back to a full rebuild, still bit-identical, still leak-free.
"""

import gc
import multiprocessing
import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.rtx import forest as forest_mod
from repro.rtx import shm
from repro.rtx.bvh import BvhBuildOptions, build_bvh, bvh_arrays_diff
from repro.rtx.forest import build_forest, delta_update_forest
from repro.rtx.geometry import TriangleBuffer, make_triangle_vertices


def _buffer(points: np.ndarray) -> TriangleBuffer:
    return TriangleBuffer(make_triangle_vertices(points))


def _points(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1e5, size=(n, 3))


def _options(workers: int = 1, shard_bits: int = 4) -> BvhBuildOptions:
    return BvhBuildOptions(shard_bits=shard_bits, workers=workers, backend="shm")


def _assert_no_new_blocks(baseline: frozenset) -> None:
    gc.collect()
    leaked = shm.live_block_names() - baseline
    assert not leaked, f"leaked shm blocks: {sorted(leaked)}"


def _boom(task):
    """Module-level so the fork pool can pickle it by qualified name."""
    raise ValueError("injected worker failure")


def _killable_build(queue):
    """Child-process target: start an shm build, report the live block
    names mid-build, then stall so the parent can SIGKILL it."""

    def report_and_stall(task):
        queue.put(sorted(shm.live_block_names()))
        time.sleep(300)  # the parent kills us long before this expires

    forest_mod._shm_round1 = report_and_stall
    build_forest(_buffer(_points(1200, seed=7)), _options(workers=1))


class TestLifecycle:
    def test_blocks_drain_after_gc(self):
        baseline = shm.live_block_names()
        forest = build_forest(_buffer(_points(1500)), _options())
        assert len(shm.live_block_names() - baseline) > 0
        del forest
        _assert_no_new_blocks(baseline)

    def test_delta_chain_drains_after_gc(self):
        baseline = shm.live_block_names()
        points = _points(2000, seed=1)
        buf = _buffer(points)
        forest = build_forest(buf, _options(shard_bits=6))
        moved = points.copy()
        moved[50] = points[60]  # interior move: bounds unchanged
        new_buf = _buffer(moved)
        updated, stats = delta_update_forest(forest, buf, new_buf)
        assert not stats.noop
        del forest, updated
        _assert_no_new_blocks(baseline)

    def test_epoch_snapshot_outlives_the_forest(self):
        # The serving layer pins a Bvh across updates: its shm-view arrays
        # must stay readable after the owning forest (and even the block
        # *names*) are gone.
        baseline = shm.live_block_names()
        points = _points(1200, seed=2)
        buf = _buffer(points)
        forest = build_forest(buf, _options())
        pinned = forest.bvh
        want_left = pinned.left.copy()
        moved = points.copy()
        moved[7] = points[8]
        updated, _ = delta_update_forest(forest, buf, _buffer(moved))
        del forest, updated
        gc.collect()
        assert np.array_equal(pinned.left, want_left)
        assert pinned.node_count == want_left.shape[0]
        del pinned
        _assert_no_new_blocks(baseline)

    def test_workers_1_shm_is_serial_bit_for_bit(self):
        # More shards than keys + empty shards in the same column.
        points = _points(9, seed=3)
        single = build_bvh(_buffer(points), BvhBuildOptions(max_leaf_size=1))
        forest = build_forest(
            _buffer(points),
            BvhBuildOptions(shard_bits=10, max_leaf_size=1, backend="shm"),
        )
        assert bvh_arrays_diff(forest.bvh, single) is None
        assert forest.non_empty_shards < forest.num_shards


class TestFailurePaths:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_exception_unlinks_every_block(self, workers, monkeypatch):
        baseline = shm.live_block_names()
        monkeypatch.setattr(forest_mod, "_shm_round1", _boom)
        with pytest.raises(ValueError, match="injected worker failure"):
            build_forest(_buffer(_points(800, seed=4)), _options(workers=workers))
        _assert_no_new_blocks(baseline)

    def test_failed_build_leaves_no_reopenable_names(self, monkeypatch):
        baseline = shm.live_block_names()
        seen: list[str] = []
        original = forest_mod._shm_finalize

        def capture_and_fail(state, epoch, executor, plan, options, n):
            seen.extend(state.arena.names())
            seen.extend(epoch.arena.names())
            raise RuntimeError("injected finalize failure")

        monkeypatch.setattr(forest_mod, "_shm_finalize", capture_and_fail)
        with pytest.raises(RuntimeError, match="injected finalize failure"):
            build_forest(_buffer(_points(600, seed=5)), _options())
        monkeypatch.setattr(forest_mod, "_shm_finalize", original)
        assert seen, "the failing build must have allocated blocks"
        for name in seen:
            # The definitive probe: a released block's name cannot be
            # attached to again.
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        _assert_no_new_blocks(baseline)

    def test_sigkilled_build_leaves_no_blocks_after_parent_cleanup(self):
        """A build process killed with SIGKILL mid-build cannot run any
        finalizer, so its ``/dev/shm`` blocks survive it — the abnormal
        exit no amount of in-process error handling covers.  The parent
        must be able to reclaim every one of them by name."""
        baseline = shm.live_block_names()
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        child = ctx.Process(target=_killable_build, args=(queue,))
        child.start()
        try:
            names = queue.get(timeout=60)
        finally:
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=60)
        assert child.exitcode == -signal.SIGKILL
        assert names, "the build must have allocated blocks before the kill"

        # The kill really leaked: the names are still attachable.
        leaked = []
        for name in names:
            try:
                block = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            block.close()
            leaked.append(name)
        assert leaked, "SIGKILL mid-build must leave linked blocks behind"

        # Parent cleanup reclaims every one of them, idempotently.
        assert shm.reclaim_block_names(names) == len(leaked)
        assert shm.reclaim_block_names(names) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        _assert_no_new_blocks(baseline)

    def test_failed_delta_recovers_with_a_full_rebuild(self, monkeypatch):
        baseline = shm.live_block_names()
        points = _points(1600, seed=6)
        buf = _buffer(points)
        forest = build_forest(buf, _options(shard_bits=6))
        moved = points.copy()
        moved[100] = points[101]
        new_buf = _buffer(moved)

        original = forest_mod._shm_finalize
        monkeypatch.setattr(
            forest_mod,
            "_shm_finalize",
            lambda *args: (_ for _ in ()).throw(RuntimeError("injected")),
        )
        with pytest.raises(RuntimeError, match="injected"):
            delta_update_forest(forest, buf, new_buf)
        monkeypatch.setattr(forest_mod, "_shm_finalize", original)

        # The cached incremental state is gone; the next update must fall
        # back to a from-scratch build and still come out bit-identical.
        assert forest._shm_state is None and forest._shm_epoch is None
        updated, stats = delta_update_forest(forest, buf, new_buf)
        assert stats.dirty_keys == stats.total_keys  # full rebuild
        fresh = build_bvh(new_buf, BvhBuildOptions())
        assert bvh_arrays_diff(updated.bvh, fresh) is None
        del forest, updated
        _assert_no_new_blocks(baseline)
