"""BENCH artifact hygiene: malformed entries must never reach the file.

The ``BENCH_engine.json`` trajectory only stays comparable across PRs if
every entry carries the same identity/timing contract — a scenario that
hand-rolls its entry dict and forgets ``new_seconds_p95`` (or the ``path``
the target checker keys on) would poison every later comparison silently.
``append_artifact`` therefore validates entries up front and refuses the
whole run; this suite pins that gate.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks" / "perf_smoke.py"
_spec = importlib.util.spec_from_file_location("perf_smoke", _BENCH)
perf_smoke = importlib.util.module_from_spec(_spec)
sys.modules["perf_smoke"] = perf_smoke
_spec.loader.exec_module(perf_smoke)


def _entry(**overrides) -> dict:
    entry = {
        "path": "restart",
        "new_seconds": 0.5,
        "new_seconds_p50": 0.6,
        "new_seconds_p95": 0.7,
        "timing_repeats": 3,
    }
    entry.update(overrides)
    return entry


class TestValidateEntries:
    def test_complete_entry_passes(self):
        perf_smoke.validate_entries([_entry()])

    def test_extra_keys_are_fine(self):
        perf_smoke.validate_entries([_entry(log2_keys=20, speedup=2.0)])

    @pytest.mark.parametrize("key", perf_smoke.REQUIRED_ENTRY_KEYS)
    def test_each_required_key_is_enforced(self, key):
        entry = _entry()
        del entry[key]
        with pytest.raises(ValueError, match=key):
            perf_smoke.validate_entries([entry])

    def test_error_names_the_offending_entry(self):
        bad = _entry(path="paging")
        del bad["new_seconds_p95"]
        with pytest.raises(ValueError, match="'paging'"):
            perf_smoke.validate_entries([_entry(), bad])

    def test_all_missing_keys_are_listed(self):
        entry = _entry()
        del entry["new_seconds_p50"], entry["timing_repeats"]
        with pytest.raises(ValueError) as exc:
            perf_smoke.validate_entries([entry])
        assert "new_seconds_p50" in str(exc.value)
        assert "timing_repeats" in str(exc.value)

    def test_non_dict_entry_rejected(self):
        with pytest.raises(ValueError, match="not a dict"):
            perf_smoke.validate_entries([("restart", 0.5)])


class TestAppendArtifact:
    def test_rejects_before_writing(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        bad = _entry()
        del bad["timing_repeats"]
        with pytest.raises(ValueError, match="timing_repeats"):
            perf_smoke.append_artifact([_entry(), bad], out)
        assert not out.exists(), "a rejected run must not touch the artifact"

    def test_valid_run_is_appended(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        perf_smoke.append_artifact([_entry(workers=2, shards=16)], out)
        trajectory = json.loads(out.read_text())
        assert len(trajectory["runs"]) == 1
        recorded = trajectory["runs"][0]["entries"][0]
        assert recorded["path"] == "restart"
        assert recorded["workers"] == 2
