"""Tests for RXConfig and the key decomposition."""

import pytest

from repro.core.config import (
    KeyDecomposition,
    KeyMode,
    PointRayMode,
    PrimitiveType,
    RangeRayMode,
    RXConfig,
    UpdatePolicy,
)


class TestKeyDecomposition:
    def test_default_is_paper_split(self):
        decomposition = KeyDecomposition()
        assert (decomposition.x_bits, decomposition.y_bits, decomposition.z_bits) == (23, 23, 18)
        assert decomposition.total_bits == 64

    def test_max_key_full_range(self):
        assert KeyDecomposition().max_key == (1 << 64) - 1

    def test_max_key_partial_range(self):
        assert KeyDecomposition(16, 10, 0).max_key == (1 << 26) - 1

    def test_component_limited_to_23_bits(self):
        with pytest.raises(ValueError):
            KeyDecomposition(x_bits=24)

    def test_x_component_required(self):
        with pytest.raises(ValueError):
            KeyDecomposition(x_bits=0, y_bits=23, z_bits=18)

    def test_label_round_trip(self):
        decomposition = KeyDecomposition(20, 6, 0)
        assert decomposition.label() == "20+6+0"
        assert KeyDecomposition.from_label("20+6+0") == decomposition

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            KeyDecomposition.from_label("20+6")


class TestRXConfigValidation:
    def test_paper_default_is_valid(self):
        RXConfig.paper_default().validate()

    def test_default_matches_selected_configuration(self):
        config = RXConfig.paper_default()
        assert config.key_mode is KeyMode.THREE_D
        assert config.primitive is PrimitiveType.TRIANGLE
        assert config.point_ray_mode is PointRayMode.PERPENDICULAR
        assert config.range_ray_mode is RangeRayMode.PARALLEL_FROM_OFFSET
        assert config.compaction is True
        assert config.update_policy is UpdatePolicy.REBUILD

    def test_extended_mode_rejects_spheres(self):
        config = RXConfig(
            key_mode=KeyMode.EXTENDED,
            primitive=PrimitiveType.SPHERE,
            point_ray_mode=PointRayMode.PERPENDICULAR,
            range_ray_mode=RangeRayMode.PARALLEL_FROM_ZERO,
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_extended_mode_rejects_offset_rays(self):
        with pytest.raises(ValueError):
            RXConfig(
                key_mode=KeyMode.EXTENDED,
                point_ray_mode=PointRayMode.PARALLEL_FROM_OFFSET,
            ).validate()
        with pytest.raises(ValueError):
            RXConfig(
                key_mode=KeyMode.EXTENDED,
                range_ray_mode=RangeRayMode.PARALLEL_FROM_OFFSET,
            ).validate()

    def test_compaction_conflicts_with_updates(self):
        with pytest.raises(ValueError):
            RXConfig(compaction=True, allow_updates=True).validate()

    def test_refit_requires_update_flag(self):
        with pytest.raises(ValueError):
            RXConfig(update_policy=UpdatePolicy.REFIT, allow_updates=False, compaction=False).validate()

    def test_with_updates_enabled_helper(self):
        config = RXConfig.paper_default().with_updates_enabled()
        config.validate()
        assert config.allow_updates and not config.compaction
        assert config.update_policy is UpdatePolicy.REFIT

    def test_sphere_radius_bounds(self):
        with pytest.raises(ValueError):
            RXConfig(sphere_radius=0.6).validate()

    def test_value_bytes_restricted(self):
        with pytest.raises(ValueError):
            RXConfig(value_bytes=2).validate()

    def test_max_rays_per_range_positive(self):
        with pytest.raises(ValueError):
            RXConfig(max_rays_per_range=0).validate()


class TestResilienceKnobValidation:
    def test_defaults_are_valid(self):
        config = RXConfig.paper_default()
        config.validate()
        assert config.serve_deadline is None
        assert config.serve_max_queue is None

    def test_deadline_must_be_positive_finite(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            config = RXConfig.paper_default()
            config.serve_deadline = bad
            with pytest.raises(ValueError, match="serve_deadline"):
                config.validate()

    def test_max_wait_nan_rejected(self):
        config = RXConfig.paper_default()
        config.serve_max_wait = float("nan")
        with pytest.raises(ValueError, match="serve_max_wait"):
            config.validate()

    def test_max_wait_exceeding_deadline_rejected(self):
        config = RXConfig.paper_default()
        config.serve_deadline = 1e-3
        config.serve_max_wait = 5e-3
        with pytest.raises(ValueError, match="serve_max_wait.*serve_deadline"):
            config.validate()

    def test_zero_max_wait_with_deadline_is_allowed(self):
        config = RXConfig.paper_default()
        config.serve_deadline = 1e-3
        config.serve_max_wait = 0.0
        config.validate()  # immediate flush always fits any deadline

    def test_queue_bound_must_be_at_least_one(self):
        for bad in (0, -5):
            config = RXConfig.paper_default()
            config.serve_max_queue = bad
            with pytest.raises(ValueError, match="serve_max_queue"):
                config.validate()

    def test_retry_knob_validation(self):
        for field, bad in (
            ("serve_retry_max", -1),
            ("serve_retry_backoff", -1e-3),
            ("serve_retry_backoff", float("nan")),
            ("serve_retry_factor", 0.5),
            ("serve_retry_factor", float("nan")),
            ("serve_retry_jitter", -0.1),
            ("serve_retry_jitter", 1.5),
            ("serve_retry_jitter", float("nan")),
        ):
            config = RXConfig.paper_default()
            setattr(config, field, bad)
            with pytest.raises(ValueError, match=field):
                config.validate()
