"""Tests for Morton encoding (LBVH builder support)."""

import numpy as np
import pytest

from repro.rtx.morton import (
    expand_bits_3,
    morton_decode_3d,
    morton_encode_3d,
    quantize_to_grid,
)


class TestExpandBits:
    def test_zero(self):
        assert expand_bits_3(np.array([0]), 10)[0] == 0

    def test_single_bit_positions(self):
        # Bit k of the input lands at position 3k of the output.
        for k in range(5):
            value = np.uint64(1 << k)
            assert expand_bits_3(np.array([value]), 10)[0] == np.uint64(1 << (3 * k))

    def test_no_overlap_between_axes(self):
        x = expand_bits_3(np.array([0b111]), 3) << np.uint64(2)
        y = expand_bits_3(np.array([0b111]), 3) << np.uint64(1)
        z = expand_bits_3(np.array([0b111]), 3)
        assert (x & y) == 0 and (x & z) == 0 and (y & z) == 0


class TestQuantize:
    def test_bounds_map_to_extremes(self):
        points = np.array([[0, 0, 0], [10, 10, 10]], dtype=float)
        grid = quantize_to_grid(points, 4)
        assert grid[0].tolist() == [0, 0, 0]
        assert grid[1].tolist() == [15, 15, 15]

    def test_degenerate_axis(self):
        points = np.array([[0, 5, 1], [10, 5, 1]], dtype=float)
        grid = quantize_to_grid(points, 4)
        # A collapsed axis quantises to cell 0 everywhere instead of dividing
        # by zero.
        assert grid[:, 1].tolist() == [0, 0]


class TestMortonCodes:
    def test_codes_are_monotone_along_a_line(self):
        points = np.column_stack([np.arange(100), np.zeros(100), np.zeros(100)]).astype(float)
        codes = morton_encode_3d(points, 10)
        assert np.all(np.diff(codes.astype(np.int64)) >= 0)

    def test_nearby_points_share_prefixes(self):
        points = np.array([[0, 0, 0], [1, 1, 1], [1000, 1000, 1000]], dtype=float)
        codes = morton_encode_3d(points, 10)
        assert abs(int(codes[1]) - int(codes[0])) < abs(int(codes[2]) - int(codes[0]))

    def test_round_trip_through_decode(self):
        rng = np.random.default_rng(5)
        grid_points = rng.integers(0, 2**8, size=(50, 3)).astype(np.uint64)
        # Encode manually from grid coordinates (bypassing quantisation).
        codes = (
            (expand_bits_3(grid_points[:, 0], 8) << np.uint64(2))
            | (expand_bits_3(grid_points[:, 1], 8) << np.uint64(1))
            | expand_bits_3(grid_points[:, 2], 8)
        )
        decoded = morton_decode_3d(codes, 8)
        assert np.array_equal(decoded, grid_points)

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_encode_3d(np.zeros((1, 3)), bits=22)
        with pytest.raises(ValueError):
            morton_encode_3d(np.zeros((1, 3)), bits=0)
