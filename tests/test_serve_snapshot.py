"""Epoch snapshots under updates racing in-flight batches.

The isolation contract: every batch's results match *exactly one* epoch — a
reference run against the pre-update index or against the post-update index,
never a mix — no matter how submissions and updates interleave.  The tests
drive deterministic interleavings through :class:`repro.serve.IndexService`
and compare each batch bit-for-bit against per-epoch reference indexes.
"""

import os

import numpy as np
import pytest

from repro.core.config import RXConfig, UpdatePolicy
from repro.core.rx_index import RXIndex
from repro.serve import (
    EpochManager,
    FaultInjector,
    FaultSpec,
    IndexService,
    UpdateFailed,
)
from repro.workloads import dense_shuffled_keys

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


def delta_config():
    return RXConfig.paper_default().with_delta_updates(shard_bits=4)


def epoch_references(config, key_columns):
    """One frozen reference index per epoch's key column."""
    references = []
    for keys in key_columns:
        index = RXIndex(config)
        index.build(keys)
        references.append(index)
    return references


def epoch_of_batch(result, queries, references):
    """Index of the unique epoch whose reference reproduces ``result``."""
    matches = [
        e
        for e, reference in enumerate(references)
        if np.array_equal(
            result.result_rows(), reference.point_lookup(queries).result_rows
        )
    ]
    assert len(matches) >= 1, "batch results match no epoch at all"
    return matches


def shifted(keys, lo, hi):
    out = keys.copy()
    out[lo:hi] = out[lo:hi][::-1]
    return out


class TestRacingUpdates:
    @pytest.mark.parametrize("policy", ["delta", "rebuild"])
    def test_update_racing_inflight_batch_is_isolated(self, policy):
        """Submissions race one update; the open window stays on its epoch."""
        keys0 = dense_shuffled_keys(2048, seed=21)
        keys1 = shifted(keys0, 0, 700)
        config = (
            delta_config()
            if policy == "delta"
            else RXConfig.paper_default()
        )
        references = epoch_references(config, [keys0, keys1])
        # Queries whose rowIDs differ between the epochs, so a mixed batch
        # cannot masquerade as either reference.
        queries = keys0[:64]
        assert not np.array_equal(
            references[0].point_lookup(queries).result_rows,
            references[1].point_lookup(queries).result_rows,
        )

        index = RXIndex(config)
        index.build(keys0)
        service = IndexService(index, max_batch=4096, max_wait=10.0, cache_capacity=0)

        service.submit_point(queries, arrival=0.0)  # window opens on epoch 0
        service.update(keys1)  # racing update -> epoch 1 built on the side
        service.submit_point(queries, arrival=0.1)  # joins the pinned window
        in_flight = service.drain()

        for result in in_flight:
            assert result.epoch == 0
            assert epoch_of_batch(result, queries, references) == [0]

        service.submit_point(queries, arrival=0.2)  # next window
        (after,) = service.drain()
        assert after.epoch == 1
        assert epoch_of_batch(after, queries, references) == [1]

    def test_chained_updates_each_window_matches_one_epoch(self):
        """Three epochs, windows interleaved with updates: every result
        matches exactly its pinned epoch's reference run."""
        keys0 = dense_shuffled_keys(1024, seed=22)
        keys1 = shifted(keys0, 0, 400)
        keys2 = shifted(keys1, 300, 900)
        config = delta_config()
        references = epoch_references(config, [keys0, keys1, keys2])
        queries = keys0[::16]

        index = RXIndex(config)
        index.build(keys0)
        service = IndexService(index, max_batch=4096, max_wait=10.0, cache_capacity=0)

        observed = []
        service.submit_point(queries, arrival=0.0)
        service.update(keys1)
        observed += service.drain()  # pinned to epoch 0
        service.submit_point(queries, arrival=0.1)
        service.update(keys2)
        service.submit_point(queries, arrival=0.2)
        observed += service.drain()  # pinned to epoch 1
        service.submit_point(queries, arrival=0.3)
        observed += service.drain()  # epoch 2

        expected_epochs = [0, 1, 1, 2]
        assert [r.epoch for r in observed] == expected_epochs
        for result, epoch in zip(observed, expected_epochs):
            matched = epoch_of_batch(result, queries, references)
            assert epoch in matched
            # The batch equals its pinned epoch bit-for-bit, including the
            # aggregate over that epoch's value column.
            reference = references[epoch].point_lookup(queries)
            assert np.array_equal(result.result_rows(), reference.result_rows)
            assert np.array_equal(result.hits_per_lookup(), reference.hits_per_lookup)
            snapshot_values = references[epoch].values
            assert result.aggregate(snapshot_values) == reference.aggregate

    def test_window_boundary_repins_current_epoch(self):
        """A flush that leaves requests pending re-pins the *current* epoch
        for the next window."""
        keys0 = dense_shuffled_keys(1024, seed=23)
        keys1 = shifted(keys0, 0, 512)
        config = delta_config()
        references = epoch_references(config, [keys0, keys1])
        queries = keys0[:8]

        index = RXIndex(config)
        index.build(keys0)
        # max_batch of 8 queries: two 8-query requests span two windows.
        service = IndexService(index, max_batch=8, max_wait=10.0, cache_capacity=0)
        service.submit_point(queries, arrival=0.0)
        service.submit_point(queries, arrival=0.1)
        service.update(keys1)
        results = service.drain()
        assert [r.epoch for r in results] == [0, 1]
        assert epoch_of_batch(results[0], queries, references) == [0]
        assert epoch_of_batch(results[1], queries, references) == [1]


class TestCacheEpochIntegrityUnderFaults:
    @pytest.mark.parametrize("trial", range(4))
    def test_cache_never_serves_cross_epoch_under_update_faults(self, trial):
        """Property: no window's result is ever tagged with (or equal to) a
        different epoch than the snapshot that served the window, under a
        random interleaving of submissions and randomly *faulting* updates.

        Each faulted update rolls back (fresh epoch, old content), each
        successful one advances the content — either way the cache sweeps on
        every advance, so a cached result can only be served back to a
        window pinned to the exact epoch it was computed against.
        """
        rng = np.random.default_rng([1201, FAULT_SEED, trial])
        keys = dense_shuffled_keys(1024, seed=27)
        config = delta_config()
        injector = FaultInjector(
            seed=FAULT_SEED + trial,
            specs={"update": FaultSpec(probability=0.5)},
        )
        index = RXIndex(config)
        index.build(keys)
        service = IndexService(
            index,
            max_batch=64,
            max_wait=10.0,
            cache_capacity=128,
            fault_injector=injector,
        )
        # Epoch -> key column, maintained alongside the service's updates.
        columns = {0: keys}
        content = keys
        references = {}
        query_pool = [keys[:16], keys[16:32], keys[:16]]  # repeats hit cache
        queries_of = {}  # request_id -> its query batch

        def check(results):
            for result in results:
                epoch = result.epoch
                assert epoch in columns
                if epoch not in references:
                    ref = RXIndex(config)
                    ref.build(columns[epoch])
                    references[epoch] = ref
                queries = queries_of[result.request_id]
                expected = references[epoch].point_lookup(queries)
                assert np.array_equal(
                    result.result_rows(), expected.result_rows
                ), "cache served a result from a different epoch"

        arrival = 0.0
        for step in range(30):
            action = rng.random()
            if action < 0.3:
                lo = int(rng.integers(0, 512))
                hi = lo + int(rng.integers(64, 512))
                new_keys = shifted(content, lo, hi)
                outcome = service.update(new_keys)
                if isinstance(outcome, UpdateFailed):
                    columns[service.index.epoch - 1] = new_keys
                    columns[service.index.epoch] = content
                else:
                    content = new_keys
                    columns[service.index.epoch] = content
            else:
                queries = query_pool[int(rng.integers(0, len(query_pool)))]
                arrival += 0.01
                request = service.submit_point(queries, arrival=arrival)
                queries_of[request.request_id] = queries
                if rng.random() < 0.7:
                    check(service.drain())
        check(service.drain())


class TestExceptionSafeFlush:
    def test_flush_that_raises_cannot_leak_the_snapshot(self):
        """Bugfix pin discipline: a launch raising mid-flush must release
        the window's snapshot (no permanently pinned dead epoch) and leave
        the service able to serve the next window."""
        keys = dense_shuffled_keys(512, seed=28)
        index = RXIndex(delta_config())
        index.build(keys)
        service = IndexService(index, max_batch=64, max_wait=10.0, cache_capacity=0)
        snapshot = service.epochs.current()

        def boom(window, snap):
            raise RuntimeError("mid-flush explosion")

        original = service.scheduler.launch_window
        service.scheduler.launch_window = boom
        service.submit_point(keys[:8], arrival=0.0)
        assert snapshot.pins == 1
        with pytest.raises(RuntimeError, match="mid-flush explosion"):
            service.drain()
        assert snapshot.pins == 0  # released despite the exception

        # The same epoch snapshot serves the next window normally.
        service.scheduler.launch_window = original
        service.submit_point(keys[:8], arrival=0.1)
        (result,) = service.drain()
        assert result.epoch == snapshot.epoch
        with pytest.raises(ValueError, match="released more often"):
            service.epochs.release(snapshot)

    def test_failed_flush_repins_for_requests_beyond_the_window(self):
        """An exception in one window's launch must not orphan the requests
        already queued for the next window."""
        keys = dense_shuffled_keys(512, seed=29)
        index = RXIndex(delta_config())
        index.build(keys)
        service = IndexService(index, max_batch=8, max_wait=10.0, cache_capacity=0)

        calls = {"n": 0}
        original = service.scheduler.launch_window

        def fail_once(window, snap):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first window fails")
            return original(window, snap)

        service.scheduler.launch_window = fail_once
        service.submit_point(keys[:8], arrival=0.0)  # window 1
        service.submit_point(keys[8:16], arrival=0.1)  # window 2
        with pytest.raises(RuntimeError, match="first window fails"):
            service.drain()
        # The second window was re-pinned and still serves.
        results = service.drain()
        assert len(results) == 1
        assert results[0].num_lookups == 8


class TestEpochManager:
    def test_refit_policy_rejected(self):
        keys = dense_shuffled_keys(256, seed=24)
        index = RXIndex(RXConfig.paper_default().with_updates_enabled())
        index.build(keys)
        assert index.config.update_policy is UpdatePolicy.REFIT
        with pytest.raises(ValueError, match="REBUILD or DELTA_SHARD"):
            EpochManager(index)

    def test_requires_built_index(self):
        with pytest.raises(RuntimeError, match="build"):
            EpochManager(RXIndex(RXConfig.paper_default()))

    def test_pin_release_accounting(self):
        keys = dense_shuffled_keys(256, seed=25)
        index = RXIndex(delta_config())
        index.build(keys)
        manager = EpochManager(index)
        snapshot = manager.pin(manager.current())
        assert snapshot.pins == 1
        manager.release(snapshot)
        assert snapshot.pins == 0
        with pytest.raises(ValueError, match="released more often"):
            manager.release(snapshot)

    def test_advance_notifies_listeners_and_retires(self):
        keys = dense_shuffled_keys(256, seed=26)
        index = RXIndex(delta_config())
        index.build(keys)
        manager = EpochManager(index)
        seen = []
        manager.add_listener(seen.append)
        old = manager.pin(manager.current())
        index.update(shifted(keys, 0, 128))
        new = manager.current()
        assert seen == [new.epoch]
        assert new.epoch == old.epoch + 1
        assert manager.stats.retired == 0  # old epoch still pinned
        manager.release(old)
        assert manager.stats.retired == 1
