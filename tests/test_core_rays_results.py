"""Tests for ray construction helpers and result post-processing."""

import numpy as np
import pytest

from repro.baselines.base import MISS_SENTINEL
from repro.core.rays import (
    expand_multi_row_ranges,
    parallel_rays_from_offset,
    parallel_rays_from_zero,
    perpendicular_point_rays,
)
from repro.core.results import (
    aggregate_values,
    collect_row_ids,
    first_row_per_lookup,
    hits_per_lookup,
)
from repro.rtx.traversal import HitRecords


class TestRayConstruction:
    def test_perpendicular_rays(self):
        anchors = np.array([[5, 2, 3]], dtype=float)
        rays = perpendicular_point_rays(anchors)
        assert rays.origins[0].tolist() == pytest.approx([5.0, 2.0, 2.5])
        assert rays.directions[0].tolist() == [0.0, 0.0, 1.0]
        assert rays.tmax[0] == pytest.approx(1.0)

    def test_offset_rays_parameters_match_table2(self):
        rays = parallel_rays_from_offset([0.0], [0.0], [1.5], [3.5])
        assert rays.origins[0, 0] == pytest.approx(1.5)
        assert rays.tmin[0] == pytest.approx(0.0)
        assert rays.tmax[0] == pytest.approx(2.0)

    def test_zero_rays_parameters_match_table2(self):
        rays = parallel_rays_from_zero([0.0], [0.0], [1.5], [3.5])
        assert rays.origins[0, 0] == pytest.approx(0.0)
        assert rays.tmin[0] == pytest.approx(1.5)
        assert rays.tmax[0] == pytest.approx(3.5)

    def test_lookup_ids_default_and_explicit(self):
        rays = parallel_rays_from_offset([0, 0], [0, 0], [0, 1], [1, 2], lookup_ids=[7, 7])
        assert rays.lookup_ids.tolist() == [7, 7]


class TestMultiRowExpansion:
    def test_single_row(self):
        lookup_ids, rows, first, last = expand_multi_row_ranges([3], [3], 16)
        assert rows.tolist() == [3]
        assert first.tolist() == [True] and last.tolist() == [True]

    def test_multiple_rows_enumerated(self):
        lookup_ids, rows, first, last = expand_multi_row_ranges([3], [6], 16)
        assert rows.tolist() == [3, 4, 5, 6]
        assert first.tolist() == [True, False, False, False]
        assert last.tolist() == [False, False, False, True]

    def test_multiple_lookups_interleaved(self):
        lookup_ids, rows, _, _ = expand_multi_row_ranges([0, 10], [1, 10], 16)
        assert lookup_ids.tolist() == [0, 0, 1]
        assert rows.tolist() == [0, 1, 10]

    def test_cap_enforced(self):
        with pytest.raises(ValueError):
            expand_multi_row_ranges([0], [100], max_rays_per_range=10)

    def test_inverted_rows_rejected(self):
        with pytest.raises(ValueError):
            expand_multi_row_ranges([5], [4], 16)


class TestMaxRaysPerRangeBoundary:
    """The cap is inclusive: a lookup spanning exactly ``max_rays_per_range``
    rows fans out into that many rays; one more row must raise."""

    def test_exactly_at_cap_is_accepted(self):
        lookup_ids, rows, first, last = expand_multi_row_ranges([0], [63], 64)
        assert rows.tolist() == list(range(64))
        assert lookup_ids.tolist() == [0] * 64
        assert first.tolist() == [True] + [False] * 63
        assert last.tolist() == [False] * 63 + [True]

    def test_one_row_over_cap_is_rejected(self):
        with pytest.raises(ValueError, match="spans 65 rows, exceeding the cap"):
            expand_multi_row_ranges([0], [64], 64)

    def test_codec_boundary_through_range_ray_batch(self):
        # 3D Mode with a 4-bit x component: rows are key >> 4, so a range of
        # 64 * 16 keys spans exactly 64 rows (allowed, one ray each) and one
        # key more tips it over the default cap of 64.
        from repro.core.config import KeyDecomposition, RangeRayMode
        from repro.core.keycodec import ThreeDCodec

        codec = ThreeDCodec(KeyDecomposition(x_bits=4, y_bits=10, z_bits=0))
        lowers = np.array([0], dtype=np.uint64)
        at_cap = np.array([64 * 16 - 1], dtype=np.uint64)
        rays = codec.range_ray_batch(
            lowers, at_cap, RangeRayMode.PARALLEL_FROM_OFFSET, max_rays_per_range=64
        )
        assert len(rays) == 64
        assert rays.lookup_ids.tolist() == [0] * 64
        over_cap = np.array([64 * 16], dtype=np.uint64)
        with pytest.raises(ValueError, match="exceeding the cap"):
            codec.range_ray_batch(
                lowers, over_cap, RangeRayMode.PARALLEL_FROM_OFFSET, max_rays_per_range=64
            )


def _hits(ray_indices, prim_indices, lookup_ids, num_rays) -> HitRecords:
    return HitRecords(
        ray_indices=np.asarray(ray_indices, dtype=np.int64),
        prim_indices=np.asarray(prim_indices, dtype=np.int64),
        lookup_ids=np.asarray(lookup_ids, dtype=np.int64),
        num_rays=num_rays,
    )


class TestResultHelpers:
    def test_hits_per_lookup_counts(self):
        hits = _hits([0, 0, 2], [10, 11, 12], [0, 0, 2], 3)
        assert hits_per_lookup(hits, 4).tolist() == [2, 0, 1, 0]

    def test_first_row_per_lookup_uses_miss_sentinel(self):
        hits = _hits([1], [42], [1], 2)
        rows = first_row_per_lookup(hits, 3)
        assert rows[0] == MISS_SENTINEL
        assert rows[1] == 42
        assert rows[2] == MISS_SENTINEL

    def test_aggregate_values_sums_hits(self):
        values = np.array([0, 10, 20, 30], dtype=np.uint64)
        hits = _hits([0, 0], [1, 3], [0, 0], 1)
        assert aggregate_values(hits, values) == 40

    def test_aggregate_empty(self):
        values = np.arange(4, dtype=np.uint64)
        assert aggregate_values(_hits([], [], [], 1), values) == 0

    def test_collect_row_ids_groups_by_lookup(self):
        hits = _hits([0, 1, 1], [5, 6, 7], [0, 1, 1], 2)
        collected = collect_row_ids(hits, 3)
        assert collected[0].tolist() == [5]
        assert sorted(collected[1].tolist()) == [6, 7]
        assert collected[2].size == 0
