"""Tests for the benchmark harness and the text reporting."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex, WarpCoreHashTable
from repro.bench import (
    SCALES,
    ExperimentResult,
    ExperimentSeries,
    Scale,
    format_table,
    series_to_rows,
    simulate_build,
    simulate_lookups,
    zipf_locality,
)
from repro.bench.harness import resolve_scale, throughput_lookups_per_second
from repro.core import RXIndex
from repro.gpusim.device import RTX_2080TI, RTX_4090
from repro.workloads import dense_shuffled_keys, point_lookups
from repro.workloads.table import SecondaryIndexWorkload


@pytest.fixture
def tiny_setup():
    scale = SCALES["tiny"]
    keys = dense_shuffled_keys(scale.sim_keys, seed=21)
    queries = point_lookups(keys, scale.sim_lookups, seed=22)
    workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
    index = RXIndex()
    index.build(workload.keys, workload.values)
    return scale, workload, index


class TestScale:
    def test_presets_exist(self):
        assert {"tiny", "small", "medium"} <= set(SCALES)

    def test_resolve_by_name_and_object(self):
        assert resolve_scale("tiny") is SCALES["tiny"]
        custom = Scale("custom", 128, 64)
        assert resolve_scale(custom) is custom

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            resolve_scale("huge")

    def test_with_targets_overrides(self):
        scale = SCALES["tiny"].with_targets(target_keys=1000)
        assert scale.target_keys == 1000
        assert scale.target_lookups == SCALES["tiny"].target_lookups


class TestSimulateLookups:
    def test_returns_cost_and_verified_run(self, tiny_setup):
        scale, workload, index = tiny_setup
        cost = simulate_lookups(index, workload, scale)
        assert cost.time_ms > 0
        assert cost.run.aggregate == workload.reference_point_aggregate()

    def test_verification_catches_wrong_results(self, tiny_setup):
        scale, workload, index = tiny_setup
        broken = SecondaryIndexWorkload(
            keys=workload.keys,
            values=workload.values + np.uint64(1),
            point_queries=workload.point_queries,
        )
        with pytest.raises(AssertionError):
            simulate_lookups(index, broken, scale)

    def test_sorted_lookups_add_sort_cost_and_speed_up(self, tiny_setup):
        scale, workload, index = tiny_setup
        unsorted = simulate_lookups(index, workload, scale)
        sorted_cost = simulate_lookups(index, workload, scale, sorted_lookups=True)
        assert sorted_cost.sort_time_ms > 0
        assert sorted_cost.lookup_time_ms < unsorted.lookup_time_ms

    def test_many_batches_cost_more(self, tiny_setup):
        scale, workload, index = tiny_setup
        single = simulate_lookups(index, workload, scale, num_batches=1)
        many = simulate_lookups(index, workload, scale, num_batches=2**16)
        assert many.time_ms > single.time_ms

    def test_older_device_is_slower(self, tiny_setup):
        scale, workload, index = tiny_setup
        new = simulate_lookups(index, workload, scale, device=RTX_4090)
        old = simulate_lookups(index, workload, scale, device=RTX_2080TI)
        assert old.time_ms > new.time_ms

    def test_range_kind(self):
        scale = SCALES["tiny"]
        keys = dense_shuffled_keys(scale.sim_keys, seed=23)
        from repro.workloads import range_lookups

        lowers, uppers = range_lookups(keys, 32, span=4, seed=24)
        workload = SecondaryIndexWorkload.from_keys(keys, range_lowers=lowers, range_uppers=uppers)
        index = SortedArrayIndex()
        index.build(workload.keys, workload.values)
        cost = simulate_lookups(index, workload, scale, kind="range")
        assert cost.time_ms > 0

    def test_unknown_kind_rejected(self, tiny_setup):
        scale, workload, index = tiny_setup
        with pytest.raises(ValueError):
            simulate_lookups(index, workload, scale, kind="join")


class TestSimulateBuild:
    def test_build_time_positive(self, tiny_setup):
        scale, _, index = tiny_setup
        total, costs = simulate_build(index, scale)
        assert total > 0 and costs

    def test_presorted_build_cheaper_for_sort_based_index(self):
        scale = SCALES["tiny"]
        keys = dense_shuffled_keys(scale.sim_keys, seed=25)
        index = SortedArrayIndex()
        index.build(keys)
        unsorted_ms, _ = simulate_build(index, scale, presorted=False)
        sorted_ms, _ = simulate_build(index, scale, presorted=True)
        assert sorted_ms < unsorted_ms

    def test_hash_table_build(self):
        scale = SCALES["tiny"]
        keys = dense_shuffled_keys(scale.sim_keys, seed=26)
        index = WarpCoreHashTable()
        index.build(keys)
        total, _ = simulate_build(index, scale)
        assert total > 0


class TestHelpers:
    def test_throughput_conversion(self):
        assert throughput_lookups_per_second(100.0, 1_000_000) == pytest.approx(1e7)
        assert throughput_lookups_per_second(0.0, 10) == 0.0

    def test_zipf_locality_monotone(self):
        values = [zipf_locality(z) for z in (0.0, 0.5, 1.0, 1.5, 2.0)]
        assert values[0] == 0.0
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] <= 0.99


class TestReporting:
    def test_series_to_rows_handles_missing_points(self):
        series = [
            ExperimentSeries(label="a", x=[1, 2], y=[10.0, 20.0]),
            ExperimentSeries(label="b", x=[2], y=[5.0]),
        ]
        header, rows = series_to_rows("x", series)
        assert header[0] == "x"
        assert rows[0][2] == "N/A"

    def test_format_table_aligns_columns(self):
        table = format_table(["x", "y"], [["1", "2"], ["10", "20"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_experiment_result_to_text(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            x_label="n",
            series=[ExperimentSeries(label="a", x=[1], y=[2.0])],
            notes="note",
        )
        text = result.to_text()
        assert "figX" in text and "note" in text

    def test_series_by_label(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            x_label="n",
            series=[ExperimentSeries(label="a", x=[1], y=[2.0])],
        )
        assert result.series_by_label("a").y == [2.0]
        with pytest.raises(KeyError):
            result.series_by_label("missing")
