"""Tests for the wavefront traversal engine and its counters."""

import numpy as np
import pytest

from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.traversal import TraversalCounters, TraversalEngine


def _line_engine(n: int, **options) -> TraversalEngine:
    points = np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])
    buffer = TriangleBuffer(make_triangle_vertices(points))
    bvh = build_bvh(buffer, BvhBuildOptions(**options))
    return TraversalEngine(bvh, buffer)


def _point_rays(xs) -> RayBatch:
    xs = np.asarray(xs, dtype=float)
    origins = np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)])
    directions = np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1))
    return RayBatch(origins=origins, directions=directions, tmin=0.0, tmax=1.0)


def _brute_force_hits(engine: TraversalEngine, rays: RayBatch) -> set[tuple[int, int]]:
    """Reference: test every ray against every primitive."""
    hits = set()
    n = len(engine.primitives)
    for ray_idx in range(len(rays)):
        prim_ids = engine.primitives.intersect(
            rays.origins[ray_idx],
            rays.directions[ray_idx],
            float(rays.tmin[ray_idx]),
            float(rays.tmax[ray_idx]),
            np.arange(n, dtype=np.int64),
        )
        hits.update((ray_idx, int(p)) for p in prim_ids)
    return hits


class TestTraversalCorrectness:
    def test_point_rays_hit_their_key(self):
        engine = _line_engine(64)
        result = engine.trace(_point_rays([0, 17, 63]))
        assert set(zip(result.ray_indices.tolist(), result.prim_indices.tolist())) == {
            (0, 0), (1, 17), (2, 63),
        }

    def test_miss_rays_produce_no_hits(self):
        engine = _line_engine(64)
        result = engine.trace(_point_rays([200.0, 300.0]))
        assert result.count == 0

    def test_matches_brute_force_on_random_rays(self):
        engine = _line_engine(96)
        rng = np.random.default_rng(2)
        xs = rng.uniform(-5, 100, size=40)
        rays = _point_rays(xs)
        result = engine.trace(rays)
        assert set(zip(result.ray_indices.tolist(), result.prim_indices.tolist())) == _brute_force_hits(engine, rays)

    def test_range_ray_hits_contiguous_keys(self):
        engine = _line_engine(50)
        rays = RayBatch(
            origins=[[9.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[6.0]
        )
        result = engine.trace(rays)
        assert sorted(result.prim_indices.tolist()) == list(range(10, 16))

    def test_any_hit_filter_applied(self):
        engine = _line_engine(10)
        rays = RayBatch(origins=[[-0.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[11.0])
        keep_even = lambda r, p, l: (p % 2 == 0)
        result = engine.trace(rays, any_hit=keep_even)
        assert sorted(result.prim_indices.tolist()) == [0, 2, 4, 6, 8]

    def test_lookup_ids_propagated(self):
        engine = _line_engine(10)
        rays = RayBatch(
            origins=[[2, 0, -0.5], [7, 0, -0.5]],
            directions=[[0, 0, 1], [0, 0, 1]],
            tmin=0.0,
            tmax=1.0,
            lookup_ids=[5, 9],
        )
        result = engine.trace(rays)
        assert sorted(result.lookup_ids.tolist()) == [5, 9]

    def test_empty_ray_batch(self):
        engine = _line_engine(10)
        rays = RayBatch(
            origins=np.zeros((0, 3)), directions=np.zeros((0, 3)), tmin=np.zeros(0), tmax=np.zeros(0)
        )
        result = engine.trace(rays)
        assert result.count == 0

    def test_hits_per_ray(self):
        engine = _line_engine(20)
        rays = RayBatch(origins=[[4.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[4.0])
        result = engine.trace(rays)
        assert result.hits_per_ray()[0] == 4


class TestTraversalCounters:
    def test_counters_accumulate_across_traces(self):
        engine = _line_engine(32)
        engine.trace(_point_rays([1]))
        first = engine.counters.node_visits
        engine.trace(_point_rays([2]))
        assert engine.counters.node_visits > first
        assert engine.counters.rays == 2

    def test_reset_counters(self):
        engine = _line_engine(32)
        engine.trace(_point_rays([1]))
        engine.reset_counters()
        assert engine.counters.node_visits == 0

    def test_miss_visits_fewer_nodes_than_hit(self):
        engine = _line_engine(256)
        hit = engine.trace(_point_rays([128]))
        hit_visits = engine.counters.node_visits
        engine.reset_counters()
        engine.trace(_point_rays([1e6]))
        miss_visits = engine.counters.node_visits
        assert miss_visits < hit_visits
        assert hit.count == 1

    def test_from_zero_ray_visits_more_nodes_than_offset_ray(self):
        # The Table 3 / Figure 6 mechanism: tmin does not cull nodes.
        engine = _line_engine(256)
        offset = RayBatch(origins=[[199.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[2.0])
        engine.trace(offset)
        offset_visits = engine.counters.node_visits
        engine.reset_counters()
        zero = RayBatch(origins=[[0, 0, 0]], directions=[[1, 0, 0]], tmin=[199.5], tmax=[201.5])
        engine.trace(zero)
        zero_visits = engine.counters.node_visits
        assert zero_visits > 3 * offset_visits

    def test_idealised_traversal_culls_by_tmin(self):
        engine = _line_engine(256)
        engine.node_cull_respects_tmin = True
        zero = RayBatch(origins=[[0, 0, 0]], directions=[[1, 0, 0]], tmin=[199.5], tmax=[201.5])
        result = engine.trace(zero)
        assert sorted(result.prim_indices.tolist()) == [200, 201]
        assert engine.counters.node_visits < 64

    def test_hardware_vs_software_intersection_counters(self):
        points = np.column_stack([np.arange(16), np.zeros(16), np.zeros(16)])
        tri_engine = TraversalEngine(
            build_bvh(build_input_for_points("triangle", points).primitive_buffer()),
            build_input_for_points("triangle", points).primitive_buffer(),
        )
        aabb_input = build_input_for_points("aabb", points)
        aabb_engine = TraversalEngine(build_bvh(aabb_input.primitive_buffer()), aabb_input.primitive_buffer())
        tri_engine.trace(_point_rays([3]))
        aabb_engine.trace(_point_rays([3]))
        assert tri_engine.counters.hardware_intersection_tests > 0
        assert tri_engine.counters.software_intersection_calls == 0
        assert aabb_engine.counters.software_intersection_calls > 0
        assert aabb_engine.counters.hardware_intersection_tests == 0

    def test_counters_merge(self):
        a = TraversalCounters(rays=1, node_visits=5, prim_tests=2)
        b = TraversalCounters(rays=2, node_visits=7, prim_tests=3, max_frontier_size=9)
        a.merge(b)
        assert a.rays == 3
        assert a.node_visits == 12
        assert a.max_frontier_size == 9

    def test_counters_as_dict_and_derived(self):
        counters = TraversalCounters(rays=4, node_visits=20, prim_tests=8, node_bytes_read=100, prim_bytes_read=50)
        as_dict = counters.as_dict()
        assert as_dict["rays"] == 4
        assert counters.node_visits_per_ray == pytest.approx(5.0)
        assert counters.prim_tests_per_ray == pytest.approx(2.0)
        assert counters.total_bytes_read == 150
