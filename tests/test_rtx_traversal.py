"""Tests for the wavefront traversal engine and its counters."""

import numpy as np
import pytest

from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.traversal import TraversalCounters, TraversalEngine


def _line_engine(n: int, **options) -> TraversalEngine:
    points = np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])
    buffer = TriangleBuffer(make_triangle_vertices(points))
    bvh = build_bvh(buffer, BvhBuildOptions(**options))
    return TraversalEngine(bvh, buffer)


def _point_rays(xs) -> RayBatch:
    xs = np.asarray(xs, dtype=float)
    origins = np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)])
    directions = np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1))
    return RayBatch(origins=origins, directions=directions, tmin=0.0, tmax=1.0)


def _brute_force_hits(engine: TraversalEngine, rays: RayBatch) -> set[tuple[int, int]]:
    """Reference: test every ray against every primitive."""
    hits = set()
    n = len(engine.primitives)
    for ray_idx in range(len(rays)):
        prim_ids = engine.primitives.intersect(
            rays.origins[ray_idx],
            rays.directions[ray_idx],
            float(rays.tmin[ray_idx]),
            float(rays.tmax[ray_idx]),
            np.arange(n, dtype=np.int64),
        )
        hits.update((ray_idx, int(p)) for p in prim_ids)
    return hits


class TestTraversalCorrectness:
    def test_point_rays_hit_their_key(self):
        engine = _line_engine(64)
        result = engine.trace(_point_rays([0, 17, 63]))
        assert set(zip(result.ray_indices.tolist(), result.prim_indices.tolist())) == {
            (0, 0), (1, 17), (2, 63),
        }

    def test_miss_rays_produce_no_hits(self):
        engine = _line_engine(64)
        result = engine.trace(_point_rays([200.0, 300.0]))
        assert result.count == 0

    def test_matches_brute_force_on_random_rays(self):
        engine = _line_engine(96)
        rng = np.random.default_rng(2)
        xs = rng.uniform(-5, 100, size=40)
        rays = _point_rays(xs)
        result = engine.trace(rays)
        assert set(zip(result.ray_indices.tolist(), result.prim_indices.tolist())) == _brute_force_hits(engine, rays)

    def test_range_ray_hits_contiguous_keys(self):
        engine = _line_engine(50)
        rays = RayBatch(
            origins=[[9.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[6.0]
        )
        result = engine.trace(rays)
        assert sorted(result.prim_indices.tolist()) == list(range(10, 16))

    def test_any_hit_filter_applied(self):
        engine = _line_engine(10)
        rays = RayBatch(origins=[[-0.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[11.0])
        keep_even = lambda r, p, l: (p % 2 == 0)
        result = engine.trace(rays, any_hit=keep_even)
        assert sorted(result.prim_indices.tolist()) == [0, 2, 4, 6, 8]

    def test_lookup_ids_propagated(self):
        engine = _line_engine(10)
        rays = RayBatch(
            origins=[[2, 0, -0.5], [7, 0, -0.5]],
            directions=[[0, 0, 1], [0, 0, 1]],
            tmin=0.0,
            tmax=1.0,
            lookup_ids=[5, 9],
        )
        result = engine.trace(rays)
        assert sorted(result.lookup_ids.tolist()) == [5, 9]

    def test_empty_ray_batch(self):
        engine = _line_engine(10)
        rays = RayBatch(
            origins=np.zeros((0, 3)), directions=np.zeros((0, 3)), tmin=np.zeros(0), tmax=np.zeros(0)
        )
        result = engine.trace(rays)
        assert result.count == 0

    def test_hits_per_ray(self):
        engine = _line_engine(20)
        rays = RayBatch(origins=[[4.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[4.0])
        result = engine.trace(rays)
        assert result.hits_per_ray()[0] == 4

    def test_unknown_mode_rejected(self):
        engine = _line_engine(8)
        with pytest.raises(ValueError, match="unknown trace mode"):
            engine.trace(_point_rays([1]), mode="closest")


class TestFirstKMode:
    def _range_rays(self, spans, lookup_ids=None) -> RayBatch:
        spans = np.asarray(spans, dtype=float)
        m = spans.shape[0]
        return RayBatch(
            origins=np.tile([-0.5, 0.0, 0.0], (m, 1)),
            directions=np.tile([1.0, 0.0, 0.0], (m, 1)),
            tmin=np.zeros(m),
            tmax=spans + 0.5,
            lookup_ids=lookup_ids,
        )

    def test_limit_argument_validation(self):
        engine = _line_engine(8)
        rays = _point_rays([1])
        with pytest.raises(ValueError, match="requires a hit limit"):
            engine.trace(rays, mode="first_k")
        with pytest.raises(ValueError, match="at least 1"):
            engine.trace(rays, mode="first_k", limit=0)
        with pytest.raises(ValueError, match="only meaningful"):
            engine.trace(rays, mode="all", limit=4)
        with pytest.raises(ValueError, match="only meaningful"):
            engine.trace(rays, mode="any_hit", limit=1)

    def test_reports_first_k_hits_in_traversal_order(self):
        engine = _line_engine(32)
        # One ray crossing all 32 triangles: first_k must report exactly the
        # first `k` hits of the all-hits stream, in the same order.
        rays = self._range_rays([32.0])
        all_hits = engine.trace(rays)
        assert all_hits.count == 32
        for k in (1, 5, 32, 100):
            result = TraversalEngine(engine.bvh, engine.primitives).trace(
                rays, mode="first_k", limit=k
            )
            want = all_hits.prim_indices[: min(k, 32)]
            assert result.prim_indices.tolist() == want.tolist()

    def test_limit_one_equals_any_hit_for_single_ray_lookups(self):
        engine = _line_engine(48)
        rng = np.random.default_rng(19)
        rays = self._range_rays(rng.uniform(1, 40, size=30))
        fk_engine = TraversalEngine(engine.bvh, engine.primitives)
        fk = fk_engine.trace(rays, mode="first_k", limit=1)
        ah_engine = TraversalEngine(engine.bvh, engine.primitives)
        ah = ah_engine.trace(rays, mode="any_hit")
        assert np.array_equal(fk.ray_indices, ah.ray_indices)
        assert np.array_equal(fk.prim_indices, ah.prim_indices)
        # With the default 1:1 ray-to-lookup mapping the per-lookup budget
        # degenerates to the per-ray any-hit budget, counters included.
        assert fk_engine.counters.as_dict() == ah_engine.counters.as_dict()

    def test_budget_shared_across_rays_of_one_lookup(self):
        engine = _line_engine(64)
        # Two rays serving lookup 0 (a fanned-out multi-row range) plus one
        # ray for lookup 1: lookup 0's rays share a budget of 3 in stream
        # order, lookup 1 keeps its own.
        rays = RayBatch(
            origins=[[-0.5, 0, 0], [19.5, 0, 0], [39.5, 0, 0]],
            directions=[[1, 0, 0]] * 3,
            tmin=[0.0] * 3,
            tmax=[10.5, 10.5, 10.5],
            lookup_ids=[0, 0, 1],
        )
        result = TraversalEngine(engine.bvh, engine.primitives).trace(
            rays, mode="first_k", limit=3
        )
        by_lookup = {}
        for lookup, prim in zip(result.lookup_ids.tolist(), result.prim_indices.tolist()):
            by_lookup.setdefault(lookup, []).append(prim)
        assert len(by_lookup[0]) == 3
        assert len(by_lookup[1]) == 3
        assert all(p >= 40 for p in by_lookup[1])

    def test_counters_never_exceed_all_mode(self):
        engine = _line_engine(128)
        rng = np.random.default_rng(23)
        rays = self._range_rays(rng.uniform(10, 100, size=60))
        all_engine = TraversalEngine(engine.bvh, engine.primitives)
        all_engine.trace(rays)
        fk_engine = TraversalEngine(engine.bvh, engine.primitives)
        fk_hits = fk_engine.trace(rays, mode="first_k", limit=2)
        a, b = all_engine.counters, fk_engine.counters
        assert b.node_visits <= a.node_visits
        assert b.prim_tests <= a.prim_tests
        assert b.traversal_rounds <= a.traversal_rounds
        assert b.rays_with_hits == a.rays_with_hits
        assert b.prim_hits == fk_hits.count
        assert b.node_bytes_read == b.node_visits * engine.bvh.node_bytes()

    def test_empty_batch(self):
        engine = _line_engine(8)
        rays = RayBatch(
            origins=np.zeros((0, 3)),
            directions=np.zeros((0, 3)),
            tmin=np.zeros(0),
            tmax=np.zeros(0),
        )
        result = engine.trace(rays, mode="first_k", limit=4)
        assert result.count == 0
        assert engine.counters.traversal_rounds == 0


class TestChunkingRegression:
    """Hit records and counters must be identical for every ``max_frontier``
    setting, including the chunk=0 / chunk=None aliases for 'unbounded'."""

    @pytest.mark.parametrize("mode", ["all", "any_hit", "first_k"])
    def test_all_chunk_settings_agree(self, mode):
        points = np.column_stack([np.arange(200), np.zeros(200), np.zeros(200)])
        buffer = TriangleBuffer(make_triangle_vertices(points))
        bvh = build_bvh(buffer)
        rng = np.random.default_rng(37)
        xs = rng.uniform(-5, 205, size=150)
        rays = RayBatch(
            origins=np.column_stack([np.zeros(150), np.zeros(150), np.zeros(150)]),
            directions=np.tile([1.0, 0.0, 0.0], (150, 1)),
            tmin=xs - 0.5,
            tmax=xs + 0.5,
        )
        trace_kwargs = {"limit": 3} if mode == "first_k" else {}
        baseline_hits = None
        baseline_counters = None
        for chunk in (None, 0, 1, 7, 64, 10**9):
            engine = TraversalEngine(bvh, buffer, max_frontier=chunk)
            hits = engine.trace(rays, mode=mode, **trace_kwargs)
            if baseline_hits is None:
                baseline_hits, baseline_counters = hits, engine.counters
                continue
            assert np.array_equal(hits.ray_indices, baseline_hits.ray_indices), chunk
            assert np.array_equal(hits.prim_indices, baseline_hits.prim_indices), chunk
            assert engine.counters.as_dict() == baseline_counters.as_dict(), chunk


class TestAnyHitMode:
    def test_one_hit_per_hitting_ray(self):
        engine = _line_engine(32)
        # A long range ray crosses every triangle but reports exactly one
        # hit: the first the traversal finds (= the default mode's first).
        rays = RayBatch(
            origins=[[-0.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[33.0]
        )
        all_hits = engine.trace(rays)
        result = TraversalEngine(engine.bvh, engine.primitives).trace(
            rays, mode="any_hit"
        )
        assert all_hits.count == 32
        assert result.count == 1
        assert result.prim_indices.tolist() == [int(all_hits.prim_indices[0])]

    @pytest.mark.parametrize("max_frontier", [None, 16])
    def test_callback_rejection_continues_the_ray(self, max_frontier):
        points = np.column_stack([np.arange(12), np.zeros(12), np.zeros(12)])
        buffer = TriangleBuffer(make_triangle_vertices(points))
        bvh = build_bvh(buffer)
        engine = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
        rays = RayBatch(
            origins=[[-0.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[13.0]
        )
        # The any-hit program ignores primitives < 5: the ray must keep
        # traversing past the rejected hits and stop at the first survivor.
        # "First" means first in traversal order (like a real any-hit
        # program, whose invocation order is unspecified), i.e. exactly the
        # first surviving hit the default mode reports.
        keep_late = lambda r, p, l: (p >= 5)
        result = engine.trace(rays, any_hit=keep_late, mode="any_hit")
        reference = TraversalEngine(bvh, buffer).trace(rays, any_hit=keep_late)
        assert result.count == 1
        assert result.prim_indices.tolist() == [int(reference.prim_indices[0])]
        assert result.prim_indices[0] >= 5

    @pytest.mark.parametrize("max_frontier", [None, 16])
    def test_callback_chunked_vs_unchunked_identical(self, max_frontier):
        engine_ref = _line_engine(64)
        rng = np.random.default_rng(11)
        xs = rng.uniform(0, 64, size=80)
        rays = RayBatch(
            origins=np.zeros((80, 3)),
            directions=np.tile([1.0, 0.0, 0.0], (80, 1)),
            tmin=xs,
            tmax=xs + 20.0,
        )
        keep_odd = lambda r, p, l: (p % 2 == 1)
        want = engine_ref.trace(rays, any_hit=keep_odd, mode="any_hit")
        engine = TraversalEngine(engine_ref.bvh, engine_ref.primitives, max_frontier=max_frontier)
        got = engine.trace(rays, any_hit=keep_odd, mode="any_hit")
        assert np.array_equal(got.ray_indices, want.ray_indices)
        assert np.array_equal(got.prim_indices, want.prim_indices)
        assert np.array_equal(got.lookup_ids, want.lookup_ids)

    def test_empty_batch(self):
        engine = _line_engine(8)
        rays = RayBatch(
            origins=np.zeros((0, 3)),
            directions=np.zeros((0, 3)),
            tmin=np.zeros(0),
            tmax=np.zeros(0),
        )
        result = engine.trace(rays, mode="any_hit")
        assert result.count == 0
        assert engine.counters.traversal_rounds == 0

    def test_tmin_offset_rays(self):
        engine = _line_engine(40)
        # Rays with tmin > 0: intersections before tmin are not hits and must
        # not terminate the ray; the reported hit lies within (tmin, tmax)
        # and matches the default mode's first hit per ray.
        rays = RayBatch(
            origins=[[-0.5, 0, 0], [-0.5, 0, 0]],
            directions=[[1, 0, 0], [1, 0, 0]],
            tmin=[10.0, 20.0],
            tmax=[41.0, 41.0],
        )
        all_hits = engine.trace(rays)
        first = {}
        for r, p in zip(all_hits.ray_indices.tolist(), all_hits.prim_indices.tolist()):
            first.setdefault(r, p)
        result = TraversalEngine(engine.bvh, engine.primitives).trace(
            rays, mode="any_hit"
        )
        got = dict(zip(result.ray_indices.tolist(), result.prim_indices.tolist()))
        assert got == first
        assert result.prim_indices.min() >= 10

    def test_counters_reduced_on_long_rays(self):
        # An irregular key spacing gives the BVH leaves at varying depths, so
        # rays find their first hit rounds before their frontier would empty
        # — the situation the early exit saves work in.  (On a perfectly
        # balanced tree every leaf sits in the last round and there is
        # nothing left to cut.)
        rng = np.random.default_rng(13)
        xs = np.cumsum(rng.integers(1, 9, size=256)).astype(np.float64)
        points = np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])
        buffer = TriangleBuffer(make_triangle_vertices(points))
        bvh = build_bvh(buffer)
        picks = xs[rng.integers(0, xs.shape[0], size=64)]
        rays = RayBatch(
            origins=np.zeros((64, 3)),
            directions=np.tile([1.0, 0.0, 0.0], (64, 1)),
            tmin=picks - 0.5,
            tmax=picks + 0.5,
        )
        engine_all = TraversalEngine(bvh, buffer)
        engine_all.trace(rays)
        engine_any = TraversalEngine(bvh, buffer)
        engine_any.trace(rays, mode="any_hit")
        assert engine_any.counters.node_visits < engine_all.counters.node_visits
        assert engine_any.counters.prim_tests < engine_all.counters.prim_tests


class TestTraversalCounters:
    def test_counters_accumulate_across_traces(self):
        engine = _line_engine(32)
        engine.trace(_point_rays([1]))
        first = engine.counters.node_visits
        engine.trace(_point_rays([2]))
        assert engine.counters.node_visits > first
        assert engine.counters.rays == 2

    def test_reset_counters(self):
        engine = _line_engine(32)
        engine.trace(_point_rays([1]))
        engine.reset_counters()
        assert engine.counters.node_visits == 0

    def test_miss_visits_fewer_nodes_than_hit(self):
        engine = _line_engine(256)
        hit = engine.trace(_point_rays([128]))
        hit_visits = engine.counters.node_visits
        engine.reset_counters()
        engine.trace(_point_rays([1e6]))
        miss_visits = engine.counters.node_visits
        assert miss_visits < hit_visits
        assert hit.count == 1

    def test_from_zero_ray_visits_more_nodes_than_offset_ray(self):
        # The Table 3 / Figure 6 mechanism: tmin does not cull nodes.
        engine = _line_engine(256)
        offset = RayBatch(origins=[[199.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[2.0])
        engine.trace(offset)
        offset_visits = engine.counters.node_visits
        engine.reset_counters()
        zero = RayBatch(origins=[[0, 0, 0]], directions=[[1, 0, 0]], tmin=[199.5], tmax=[201.5])
        engine.trace(zero)
        zero_visits = engine.counters.node_visits
        assert zero_visits > 3 * offset_visits

    def test_idealised_traversal_culls_by_tmin(self):
        engine = _line_engine(256)
        engine.node_cull_respects_tmin = True
        zero = RayBatch(origins=[[0, 0, 0]], directions=[[1, 0, 0]], tmin=[199.5], tmax=[201.5])
        result = engine.trace(zero)
        assert sorted(result.prim_indices.tolist()) == [200, 201]
        assert engine.counters.node_visits < 64

    def test_hardware_vs_software_intersection_counters(self):
        points = np.column_stack([np.arange(16), np.zeros(16), np.zeros(16)])
        tri_engine = TraversalEngine(
            build_bvh(build_input_for_points("triangle", points).primitive_buffer()),
            build_input_for_points("triangle", points).primitive_buffer(),
        )
        aabb_input = build_input_for_points("aabb", points)
        aabb_engine = TraversalEngine(build_bvh(aabb_input.primitive_buffer()), aabb_input.primitive_buffer())
        tri_engine.trace(_point_rays([3]))
        aabb_engine.trace(_point_rays([3]))
        assert tri_engine.counters.hardware_intersection_tests > 0
        assert tri_engine.counters.software_intersection_calls == 0
        assert aabb_engine.counters.software_intersection_calls > 0
        assert aabb_engine.counters.hardware_intersection_tests == 0

    def test_counters_merge(self):
        a = TraversalCounters(rays=1, node_visits=5, prim_tests=2)
        b = TraversalCounters(rays=2, node_visits=7, prim_tests=3, max_frontier_size=9)
        a.merge(b)
        assert a.rays == 3
        assert a.node_visits == 12
        assert a.max_frontier_size == 9

    def test_counters_as_dict_and_derived(self):
        counters = TraversalCounters(rays=4, node_visits=20, prim_tests=8, node_bytes_read=100, prim_bytes_read=50)
        as_dict = counters.as_dict()
        assert as_dict["rays"] == 4
        assert counters.node_visits_per_ray == pytest.approx(5.0)
        assert counters.prim_tests_per_ray == pytest.approx(2.0)
        assert counters.total_bytes_read == 150
