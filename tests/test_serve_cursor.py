"""Cursor pagination through the serving layer.

Three properties on top of the index-level pagination suite:

1. **Cache keying** — ordered pages are cached per ``(epoch, class,
   cursor)``: the same page served twice is a cache hit with identical
   rows and next_cursor, while a different cursor (or a new epoch) is a
   distinct entry and never aliases another page's rows.
2. **Epoch pinning** — a DELTA_SHARD update landing mid-pagination must
   never let a resumed page read the new epoch: pages that pin the epoch
   their scan started on fail explicitly with ``"epoch_retired"`` once that
   epoch is superseded, forcing the client to restart the scan rather than
   silently mixing two epochs' rows.
3. **Coalescing** — pages of distinct concurrent scans land in the same
   ``("range", "ordered_k", k)`` launch class and are answered by one
   micro-batched launch, each request demuxing its own ordered page.
"""

import numpy as np
import pytest

from repro.core.config import RXConfig
from repro.core.rx_index import RXIndex
from repro.serve import IndexService, RequestFailure, RequestResult
from repro.workloads import dense_shuffled_keys


def delta_config():
    return RXConfig.paper_default().with_delta_updates(shard_bits=4)


def build_service(keys, **kwargs):
    index = RXIndex(delta_config())
    index.build(keys)
    return IndexService(index, **kwargs)


def golden_scan(keys, lower, upper):
    sel = (keys >= np.uint64(lower)) & (keys <= np.uint64(upper))
    rows = np.nonzero(sel)[0].astype(np.uint64)
    return rows[np.lexsort((rows, keys[sel]))]


def submit_page(service, lower, upper, k, cursor=None, pin_epoch=None, arrival=0.0):
    outcome = service.submit_range(
        np.array([lower], dtype=np.uint64),
        np.array([upper], dtype=np.uint64),
        limit=k,
        order="key",
        cursor=cursor,
        pin_epoch=pin_epoch,
        arrival=arrival,
    )
    assert not isinstance(outcome, RequestFailure), outcome
    return outcome


def drain_one(service):
    (result,) = service.drain()
    return result


class TestServePagedScan:
    def test_paged_scan_reassembles_and_pins_epoch(self):
        keys = dense_shuffled_keys(2048, seed=51)
        service = build_service(keys, cache_capacity=64)
        golden = golden_scan(keys, 100, 900)
        pages, cursor, pin = [], None, None
        for _ in range(10_000):
            submit_page(service, 100, 900, 64, cursor=cursor, pin_epoch=pin)
            result = drain_one(service)
            assert isinstance(result, RequestResult)
            assert result.order == "key"
            pin = result.epoch if pin is None else pin
            assert result.epoch == pin  # every page served by the pinned epoch
            pages.append(result.hits.prim_indices.astype(np.uint64))
            cursor = result.next_cursor
            if cursor is None:
                break
        assert np.array_equal(np.concatenate(pages), golden)
        assert all(p.shape[0] == 64 for p in pages[:-1])

    def test_page_cache_keyed_by_cursor(self):
        keys = dense_shuffled_keys(1024, seed=52)
        service = build_service(keys, cache_capacity=64)
        first = submit_page(service, 0, 500, 32) and drain_one(service)
        second = submit_page(service, 0, 500, 32, cursor=first.next_cursor) and (
            drain_one(service)
        )
        assert not first.from_cache and not second.from_cache
        assert not np.array_equal(
            first.hits.prim_indices, second.hits.prim_indices
        ), "distinct cursors must be distinct cache entries"

        # Replaying either page is a cache hit with identical content.
        for original, cursor in ((first, None), (second, first.next_cursor)):
            submit_page(service, 0, 500, 32, cursor=cursor)
            replay = drain_one(service)
            assert replay.from_cache
            assert np.array_equal(
                replay.hits.prim_indices, original.hits.prim_indices
            )
            assert replay.next_cursor == original.next_cursor
        assert service.cache.stats.hits == 2

    def test_update_mid_pagination_retires_pinned_pages(self):
        """A DELTA_SHARD update between pages must not serve stale pages:
        the resumed page pinned to the pre-update epoch fails explicitly."""
        keys0 = dense_shuffled_keys(2048, seed=53)
        keys1 = keys0.copy()
        keys1[200:800] = keys1[200:800][::-1]
        service = build_service(keys0, cache_capacity=64)

        first = submit_page(service, 100, 900, 32) and drain_one(service)
        assert first.next_cursor is not None
        pin = first.epoch

        service.update(keys1)  # DELTA_SHARD rebuild: epoch advances

        submit_page(service, 100, 900, 32, cursor=first.next_cursor, pin_epoch=pin)
        failure = drain_one(service)
        assert isinstance(failure, RequestFailure)
        assert failure.reason == "epoch_retired"
        assert service.stats()["resilience"]["rejections_epoch"] == 1

        # Restarting the scan (no pin) serves the new epoch's golden order.
        golden1 = golden_scan(keys1, 100, 900)
        restarted = submit_page(service, 100, 900, 32) and drain_one(service)
        assert isinstance(restarted, RequestResult)
        assert restarted.epoch > pin
        assert np.array_equal(
            restarted.hits.prim_indices.astype(np.uint64), golden1[:32]
        )

    def test_unpinned_resume_crosses_epochs(self):
        """Without pin_epoch the client opted out of pinning: the resumed
        page is served by the current epoch (an explicit restart choice)."""
        keys0 = dense_shuffled_keys(1024, seed=54)
        keys1 = keys0.copy()
        keys1[:400] = keys1[:400][::-1]
        service = build_service(keys0, cache_capacity=0)
        first = submit_page(service, 0, 600, 16) and drain_one(service)
        service.update(keys1)
        resumed = submit_page(service, 0, 600, 16, cursor=first.next_cursor) and (
            drain_one(service)
        )
        assert isinstance(resumed, RequestResult)
        assert resumed.epoch == first.epoch + 1

    def test_concurrent_scans_coalesce_into_one_launch(self):
        keys = dense_shuffled_keys(2048, seed=55)
        service = build_service(keys, cache_capacity=0, max_wait=10.0)
        launches_before = service.scheduler.stats.launches
        submit_page(service, 0, 400, 16)
        submit_page(service, 800, 1200, 16)
        results = service.drain()
        assert len(results) == 2
        assert service.scheduler.stats.launches == launches_before + 1
        golden_a = golden_scan(keys, 0, 400)[:16]
        golden_b = golden_scan(keys, 800, 1200)[:16]
        by_id = sorted(results, key=lambda r: r.request_id)
        assert np.array_equal(by_id[0].hits.prim_indices.astype(np.uint64), golden_a)
        assert np.array_equal(by_id[1].hits.prim_indices.astype(np.uint64), golden_b)

    def test_validation_at_submit_time(self):
        keys = dense_shuffled_keys(256, seed=56)
        service = build_service(keys, cache_capacity=0)
        lowers = np.array([0], dtype=np.uint64)
        uppers = np.array([99], dtype=np.uint64)
        with pytest.raises(ValueError, match="order"):
            service.submit_range(lowers, uppers, limit=8, order="value")
        with pytest.raises(ValueError, match="order='key'"):
            service.submit_range(lowers, uppers, limit=8, cursor="1|1")
        with pytest.raises(ValueError, match="one range"):
            service.submit_range(
                np.array([0, 10], dtype=np.uint64),
                np.array([9, 19], dtype=np.uint64),
                limit=8,
                order="key",
            )
