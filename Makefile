# Convenience wrappers around the tier-1 test command and the engine
# perf smoke, so both are one command locally and in CI.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench-smoke bench-strict

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q tests

bench-smoke:
	$(PYTHON) benchmarks/perf_smoke.py

bench-strict:
	$(PYTHON) benchmarks/perf_smoke.py --strict
