# Convenience wrappers around the tier-1 test command and the engine
# perf smoke, so both are one command locally and in CI.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-diff test-cursor test-faults test-persist bench-smoke bench-strict bench-check bench-serve bench-chaos bench-build bench-paging bench-restart

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q tests

# Differential trace harness only; honours DIFF_SEED (CI runs extra seeds).
test-diff:
	$(PYTHON) -m pytest -x -q tests/test_trace_differential.py

# Cursor-pagination harness (index-level + serve-level); honours DIFF_SEED
# (CI runs extra seeds alongside test-diff).
test-cursor:
	$(PYTHON) -m pytest -x -q tests/test_cursor_pagination.py tests/test_serve_cursor.py

# Fault-injection + snapshot-integrity harness only; honours FAULT_SEED
# (CI runs extra seeds).
test-faults:
	$(PYTHON) -m pytest -x -q tests/test_serve_faults.py tests/test_serve_snapshot.py

# Crash-safe epoch store: differential save/load round trips (honours
# DIFF_SEED) plus the seeded crash/corruption recovery harness (honours
# FAULT_SEED — CI runs extra seeds).
test-persist:
	$(PYTHON) -m pytest -x -q tests/test_persist_roundtrip.py tests/test_persist_recovery.py

bench-smoke:
	$(PYTHON) benchmarks/perf_smoke.py

bench-strict:
	$(PYTHON) benchmarks/perf_smoke.py --strict

# Correctness-only bench pass (equivalence assertions, no timing targets,
# no artifact writes) — what CI runs.
bench-check:
	$(PYTHON) benchmarks/perf_smoke.py --check-only

# Serving-layer gate: coalesced-vs-solo demux equivalence at small sizes
# (check-only, no timings enforced) — also part of CI.
bench-serve:
	$(PYTHON) benchmarks/perf_smoke.py --serve-only --check-only

# Forest-build gate: the paper-scale build scenario at its 2^20 CI size —
# serial vs fork vs shm with bit-identity asserted and the parallel targets
# (>=2x over serial, shm beats fork) enforced on hosts with >= 4 CPUs
# (recorded unenforced on smaller hosts).  BENCH_engine.json is appended.
# "--scale paper" runs the full 2^26 scenario instead.
bench-build:
	$(PYTHON) benchmarks/perf_smoke.py --build-only --scale tiny

# Chaos gate: the serving stack replayed under a seeded fault schedule;
# per-epoch bit-identity and explicit-outcome accounting asserted at small
# sizes (check-only, no timings enforced) — also part of CI.
bench-chaos:
	$(PYTHON) benchmarks/perf_smoke.py --chaos-only --check-only

# Pagination gate: cursor resume vs full-prefix rescan, page bit-identity
# and counter ordering asserted at small sizes (check-only, no timings
# enforced) — also part of CI.  The >=5x resume-vs-rescan target is
# enforced by the full bench ("bench-strict" / "--paging-only --strict").
bench-paging:
	$(PYTHON) benchmarks/perf_smoke.py --paging-only --check-only

# Warm-restart gate: cold snapshot load to first query vs full rebuild at
# the 2^20-key CI size, loaded-vs-rebuilt identity asserted and the >=1.5x
# load-vs-rebuild target enforced.  BENCH_engine.json is appended.
# "--scale paper" runs the 2^26 paper-scale column instead.
bench-restart:
	$(PYTHON) benchmarks/perf_smoke.py --restart-only --scale tiny
