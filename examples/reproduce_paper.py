"""Regenerate every table and figure of the paper from the command line.

Run all experiments (at the small simulation scale)::

    python examples/reproduce_paper.py

Run a single experiment, pick a scale or a GPU::

    python examples/reproduce_paper.py --experiment fig14 --scale medium
    python examples/reproduce_paper.py --experiment fig18
    python examples/reproduce_paper.py --list
"""

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.gpusim.device import get_device


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        action="append",
        help="experiment id (e.g. fig10, table6); may be given multiple times; default: all",
    )
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--device", default="4090", help="GPU preset: 4090, 3090, a6000, 2080ti")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0

    selected = args.experiment or list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    device = get_device(args.device)
    for name in selected:
        module = ALL_EXPERIMENTS[name]
        started = time.perf_counter()
        result = module.run(scale=args.scale, device=device)
        elapsed = time.perf_counter() - started
        print(result.to_text())
        print(f"[{name} regenerated in {elapsed:.1f}s wall clock]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
