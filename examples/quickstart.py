"""Quickstart: build an RX index, run point and range lookups, inspect costs.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import CostModel, RTX_4090, RXConfig, RXIndex, MISS_SENTINEL
from repro.workloads import dense_shuffled_keys, point_lookups, range_lookups
from repro.workloads.table import SecondaryIndexWorkload


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A table column to index: 4096 keys, the value column holds the
    #    projected attribute (as in the paper's secondary-index setup).
    # ------------------------------------------------------------------ #
    keys = dense_shuffled_keys(4096, seed=1)
    workload = SecondaryIndexWorkload.from_keys(
        keys,
        point_queries=point_lookups(keys, 1024, seed=2),
        range_lowers=range_lookups(keys, 64, span=16, seed=3)[0],
        range_uppers=range_lookups(keys, 64, span=16, seed=3)[1],
    )

    # ------------------------------------------------------------------ #
    # 2. Build the index with the paper's selected configuration:
    #    3D key mode, triangles, perpendicular point rays, compaction.
    # ------------------------------------------------------------------ #
    index = RXIndex(RXConfig.paper_default())
    build = index.build(workload.keys, workload.values)
    print(f"built RX over {build.num_keys} keys: "
          f"{build.stats['bvh_nodes']} BVH nodes, depth {build.stats['bvh_depth']}, "
          f"final footprint {build.memory.final_bytes / 1e6:.2f} MB (modelled)")

    # ------------------------------------------------------------------ #
    # 3. Point lookups: every ray reports the rowIDs it hits.
    # ------------------------------------------------------------------ #
    run = index.point_lookup(workload.point_queries)
    misses = int((run.result_rows == MISS_SENTINEL).sum())
    print(f"point lookups: {run.num_lookups} queries, {run.total_hits} hits, "
          f"{misses} misses, SUM(value) = {run.aggregate}")
    assert run.aggregate == workload.reference_point_aggregate()

    # ------------------------------------------------------------------ #
    # 4. Range lookups.
    # ------------------------------------------------------------------ #
    ranges = index.range_lookup(workload.range_lowers, workload.range_uppers)
    print(f"range lookups: {ranges.num_lookups} ranges, "
          f"{ranges.total_hits} qualifying rows, SUM(value) = {ranges.aggregate}")
    assert ranges.aggregate == workload.reference_range_aggregate()

    # LIMIT-k pushdown: stop each lookup after its first 4 qualifying rows
    # (first_k traversal) instead of post-filtering an unbounded result.
    limited = index.range_lookup(workload.range_lowers, workload.range_uppers, limit=4)
    print(f"  with LIMIT 4 pushed down: {limited.total_hits} rows returned, "
          f"traversal mode {limited.stats['trace_mode']!r}")
    assert (limited.hits_per_lookup == np.minimum(ranges.hits_per_lookup, 4)).all()

    # ------------------------------------------------------------------ #
    # 5. What would this cost on an RTX 4090 at the paper's scale?
    # ------------------------------------------------------------------ #
    cost_model = CostModel(RTX_4090)
    profile = index.lookup_profile(run, target_keys=2**26, target_lookups=2**27)
    cost = cost_model.kernel_cost(profile)
    print(f"extrapolated to 2^26 keys / 2^27 lookups on {RTX_4090.name}: "
          f"{cost.time_ms:.1f} ms ({cost.bottleneck}-bound, "
          f"{cost.dram_bytes / 1e9:.1f} GB DRAM traffic)")


if __name__ == "__main__":
    main()
