"""Indexing non-integer columns: dates, floats and strings through RX.

Section 3.2 ("Handling other data types"): every native type can be mapped to
an unsigned 64-bit integer while preserving its order, after which RX indexes
it like any other column.  This example builds one RX index over a composite
(year, month, day) date key, one over a float column, and one over string
prefixes, and runs range/point lookups on them.

Run with::

    python examples/composite_keys.py
"""

import numpy as np

from repro import RXIndex
from repro.core.typemap import (
    composite_to_uint64,
    float64_to_uint64,
    string_to_uint64,
)


def date_index_demo() -> None:
    rng = np.random.default_rng(0)
    n = 2000
    years = rng.integers(2015, 2026, size=n).astype(np.uint64)
    months = rng.integers(1, 13, size=n).astype(np.uint64)
    days = rng.integers(1, 29, size=n).astype(np.uint64)
    keys = composite_to_uint64([years, months, days], [16, 8, 8])

    index = RXIndex()
    index.build(keys)

    # All rows in March 2024: a range lookup over the packed representation.
    low = composite_to_uint64([np.array([2024]), np.array([3]), np.array([1])], [16, 8, 8])[0]
    high = composite_to_uint64([np.array([2024]), np.array([3]), np.array([28])], [16, 8, 8])[0]
    run = index.range_lookup(np.array([low]), np.array([high]))
    expected = int(((years == 2024) & (months == 3)).sum())
    print(f"date index: rows in March 2024 = {run.total_hits} (expected {expected})")
    assert run.total_hits == expected


def float_index_demo() -> None:
    rng = np.random.default_rng(1)
    prices = np.round(rng.lognormal(mean=3.0, sigma=1.0, size=2000), 2)
    # Floats must never be indexed directly: their raw value-range ratio can
    # be huge, which is exactly what slows the BVH down (Figure 3).  For
    # exact-match lookups the order-preserving bit mapping is enough; for
    # range predicates a fixed-point representation (cents) keeps the range
    # compact so a single ray can cover it.
    exact_index = RXIndex()
    exact_index.build(float64_to_uint64(prices))
    probe = float64_to_uint64(prices[:1])
    exact = exact_index.point_lookup(probe)
    print(f"float index (exact match): rows with price {prices[0]} = {exact.total_hits}")
    assert exact.total_hits == int((prices == prices[0]).sum())

    cents = np.round(prices * 100).astype(np.uint64)
    range_index = RXIndex()
    range_index.build(cents)
    run = range_index.range_lookup(np.array([1000], dtype=np.uint64), np.array([2000], dtype=np.uint64))
    expected = int(((cents >= 1000) & (cents <= 2000)).sum())
    print(f"float index (fixed-point): prices in [10.00, 20.00] = {run.total_hits} (expected {expected})")
    assert run.total_hits == expected


def string_index_demo() -> None:
    products = ["apple", "apricot", "banana", "blueberry", "cherry", "cranberry", "date", "fig"]
    names = np.array(products * 250)
    keys = string_to_uint64(names.tolist())
    index = RXIndex()
    index.build(keys)

    # Point lookup on the 64-bit prefix of "cherry".
    probe = string_to_uint64(["cherry"])
    run = index.point_lookup(probe)
    expected = int((names == "cherry").sum())
    print(f"string index: rows matching 'cherry' = {run.total_hits} (expected {expected})")
    assert run.total_hits == expected


def main() -> None:
    date_index_demo()
    float_index_demo()
    string_index_demo()
    print("\nAll three non-integer columns were indexed through the order-preserving uint64 mapping.")


if __name__ == "__main__":
    main()
