"""Index-based join: the batch-lookup workload that motivates RX.

The paper argues that batched lookups "arise naturally in index-based joins":
for every tuple of a probe relation we look its join key up in a secondary
index on the build relation and aggregate a payload column.  This example
runs that join with RX and with the three baseline GPU indexes, verifies that
all four produce the same join result, and compares their simulated cost on
an RTX 4090.

Run with::

    python examples/index_based_join.py
"""

import numpy as np

from repro import (
    GpuBPlusTree,
    RTX_4090,
    RXIndex,
    SortedArrayIndex,
    WarpCoreHashTable,
)
from repro.bench import SCALES, simulate_build, simulate_lookups
from repro.workloads import sparse_uniform_keys
from repro.workloads.table import SecondaryIndexWorkload


def make_join_workload(build_rows: int, probe_rows: int, match_fraction: float = 0.7):
    """Create a build relation (indexed) and a probe relation (lookup keys)."""
    rng = np.random.default_rng(42)
    build_keys = sparse_uniform_keys(build_rows, key_bits=32, seed=7)
    # The probe side: a mix of keys that exist in the build relation and keys
    # that do not (the join is not a foreign-key join).
    matching = build_keys[rng.integers(0, build_rows, size=int(probe_rows * match_fraction))]
    non_matching = rng.integers(0, 2**32, size=probe_rows - matching.shape[0], dtype=np.uint64)
    probe_keys = np.concatenate([matching, non_matching])
    rng.shuffle(probe_keys)
    return SecondaryIndexWorkload.from_keys(build_keys, point_queries=probe_keys)


def main() -> None:
    scale = SCALES["small"]
    workload = make_join_workload(build_rows=scale.sim_keys, probe_rows=scale.sim_lookups)
    print(f"join: {workload.num_keys} build rows x {workload.num_point_lookups} probe rows "
          f"(functional scale; costs extrapolated to 2^26 x 2^27)\n")

    reference = workload.reference_point_aggregate()
    print(f"{'index':4s} {'join SUM':>14s} {'build [ms]':>11s} {'probe [ms]':>11s} {'bottleneck':>11s}")
    for index in (WarpCoreHashTable(), GpuBPlusTree(), SortedArrayIndex(), RXIndex()):
        index.build(workload.keys, workload.values)
        build_ms, _ = simulate_build(index, scale, device=RTX_4090)
        cost = simulate_lookups(index, workload, scale, device=RTX_4090)
        assert cost.run.aggregate == reference, f"{index.name} produced a wrong join result"
        print(f"{index.name:4s} {cost.run.aggregate:14d} {build_ms:11.1f} "
              f"{cost.time_ms:11.1f} {cost.lookup_cost.bottleneck:>11s}")

    print("\nAll four indexes agree with the NumPy reference join result.")
    print("HT is fastest for this all-point-lookup join; RX becomes competitive "
          "when the probe side is skewed or contains many misses (see "
          "examples/miss_heavy_filter.py).")


if __name__ == "__main__":
    main()
