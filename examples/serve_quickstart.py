"""Serving-layer quickstart: micro-batching, epoch snapshots, result cache.

Builds an RX index, wraps it in the :class:`repro.serve.IndexService`, and
serves a Zipf-skewed open-loop stream of single-query requests three ways —
one query per launch, micro-batched, and micro-batched with the result
cache — then demonstrates an update racing an in-flight batch (the pinned
epoch snapshot keeps the batch consistent), and finally checkpoints the
service through the crash-safe epoch store and warm-restarts a new one
from the snapshot, bit-identically.

Run with::

    python examples/serve_quickstart.py
"""

import tempfile

import numpy as np

from repro import IndexService, RXConfig, RXIndex
from repro.workloads import dense_shuffled_keys, zipf_point_stream

NUM_KEYS = 4096
NUM_REQUESTS = 2048
ZIPF = 1.2
RATE = 1e6  # offered load (requests/second) far above solo-serving capacity


def serve(index, max_batch, cache_capacity):
    service = IndexService(
        index, max_batch=max_batch, max_wait=1e-3, cache_capacity=cache_capacity
    )
    stream = zipf_point_stream(
        index.keys, NUM_REQUESTS, ZIPF, rate=RATE, seed=42
    )
    report = service.replay(stream)
    return service, report


def main() -> None:
    keys = dense_shuffled_keys(NUM_KEYS, seed=1)
    # The zero-copy shared-memory build backend: workers read inputs and
    # write sub-trees through /dev/shm views, so only task descriptors are
    # ever pickled (stats()["build"] below shows the byte split).
    index = RXIndex(
        RXConfig.paper_default().with_delta_updates(shard_bits=4, backend="shm")
    )
    index.build(keys)

    # ------------------------------------------------------------------ #
    # 1. Solo vs micro-batched vs cached serving of one Zipf stream.
    # ------------------------------------------------------------------ #
    print(f"{NUM_REQUESTS} single-query requests, Zipf {ZIPF}, {NUM_KEYS} keys\n")
    print(f"{'serving mode':<28}{'req/s':>12}{'p95 [ms]':>10}{'launches':>10}{'cache hits':>12}")
    rows = [
        ("one query per launch", 1, 0),
        ("micro-batched (256)", 256, 0),
        ("micro-batched + cache", 256, 512),
    ]
    solo_rps = None
    reference = None
    for label, max_batch, cache_capacity in rows:
        service, report = serve(index, max_batch, cache_capacity)
        stats = service.stats()
        rps = report.service_throughput_rps
        solo_rps = solo_rps if solo_rps is not None else rps
        print(
            f"{label:<28}{rps:>12,.0f}"
            f"{report.latency_percentiles()['p95'] * 1e3:>10.2f}"
            f"{stats['scheduler']['launches']:>10}"
            f"{stats['cache']['hits']:>12}"
        )
        rows_now = np.concatenate([r.result_rows() for r in report.results])
        if reference is None:
            reference = rows_now
        # Coalescing and caching never change a single result bit.
        assert np.array_equal(rows_now, reference)
    print(f"\nmicro-batching is worth {rps / solo_rps:.1f}x on this stream "
          "(identical results, bit for bit)\n")

    # ------------------------------------------------------------------ #
    # 2. An update racing an in-flight batch: the open window is pinned
    #    to its epoch snapshot; the next window sees the new epoch.
    # ------------------------------------------------------------------ #
    service = IndexService(index, max_batch=1024, max_wait=10.0, cache_capacity=64)
    queries = keys[:32]
    service.submit_point(queries, arrival=0.0)  # window opens -> pins epoch
    epoch_before = service.index.epoch
    new_keys = keys.copy()
    new_keys[:256] = new_keys[:256][::-1]
    outcome = service.update(new_keys)  # delta-shard rebuild of dirty shards
    in_flight = service.drain()[0]
    service.submit_point(queries, arrival=1.0)
    after = service.drain()[0]
    print(f"update rebuilt {outcome.stats['dirty_shards']} of "
          f"{outcome.stats['total_shards']} shards while a batch was in flight:")
    print(f"  in-flight batch served epoch {in_flight.epoch} (pinned), "
          f"next batch epoch {after.epoch}")
    assert in_flight.epoch == epoch_before and after.epoch == epoch_before + 1

    # ------------------------------------------------------------------ #
    # 3. The one-dict index summary the serving layer reports.
    # ------------------------------------------------------------------ #
    stats = service.stats()
    index_stats = stats["index"]
    print("\nindex.stats():")
    for key in ("num_keys", "epoch", "shard_count", "bvh_nodes",
                "memory_final_bytes", "intersection_pack_warm"):
        print(f"  {key:<24}{index_stats[key]}")
    trace = index_stats["trace_counters"]
    print(f"  trace_counters          rays={trace['rays']}, "
          f"node_visits={trace['node_visits']}, prim_tests={trace['prim_tests']}")
    build = index_stats["build"]
    print(f"  build                   backend={build['backend']}, "
          f"workers={build['workers_used']}, shards={build['shards']}, "
          f"shared={build['bytes_shared']:,}B, "
          f"pickled={build['bytes_pickled']:,}B, "
          f"wall={build['wall_seconds'] * 1e3:.1f}ms")
    print(f"  epochs                  {stats['epochs']}")

    # ------------------------------------------------------------------ #
    # 4. Crash-safe checkpoint and warm restart: the snapshot commits via
    #    an atomic manifest rename, the restore verifies every segment
    #    checksum, and a freshly restored service answers bit-identically.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory(prefix="rx-quickstart-") as snapdir:
        save_info = service.checkpoint(snapdir)
        print(f"\ncheckpoint -> {save_info['segments_total']} segments, "
              f"{save_info['bytes_on_disk']:,}B on disk, epoch {save_info['epoch']} "
              f"({save_info['save_seconds'] * 1e3:.1f}ms)")

        golden = service.index.point_lookup(queries)
        restarted = IndexService(RXIndex.load(snapdir), max_batch=1024)
        replay = restarted.index.point_lookup(queries)
        assert np.array_equal(golden.result_rows, replay.result_rows)
        print("restored service answers bit-identically to the one that saved")

        persist = restarted.index.stats()["persist"]
        print(f"  persist                 loads={persist['loads']}, "
              f"epoch={persist['last_epoch']}, "
              f"segments={persist['segments_total']}, "
              f"bytes={persist['bytes_on_disk']:,}B, "
              f"load={persist['last_load_seconds'] * 1e3:.1f}ms "
              f"(checksums {persist['checksum_verify_seconds'] * 1e3:.1f}ms)")


if __name__ == "__main__":
    main()
