"""Miss-heavy filtering: the workload where RX shines.

Section 4.6 of the paper shows that RX speeds up disproportionately when many
lookups miss, because the BVH traversal aborts as soon as no bounding volume
covers the probed key — something neither the software trees nor the hash
table can do.  A typical database scenario is an existence filter: probing a
small dimension table with keys from a large fact table where most keys have
no match.

Run with::

    python examples/miss_heavy_filter.py
"""

from repro import GpuBPlusTree, RTX_4090, RXIndex, SortedArrayIndex, WarpCoreHashTable
from repro.bench import SCALES, simulate_lookups
from repro.workloads import point_lookups_with_hit_rate, sparse_uniform_keys
from repro.workloads.table import SecondaryIndexWorkload


def main() -> None:
    scale = SCALES["small"]
    keys = sparse_uniform_keys(scale.sim_keys, key_bits=32, seed=11)

    print("cumulative lookup time [ms], extrapolated to 2^26 keys / 2^27 lookups (RTX 4090)\n")
    header = f"{'hit rate':>8s} " + " ".join(f"{name:>8s}" for name in ("HT", "B+", "SA", "RX"))
    print(header)

    for hit_rate in (1.0, 0.9, 0.5, 0.1, 0.0):
        queries = point_lookups_with_hit_rate(
            keys, scale.sim_lookups, hit_rate=hit_rate, key_bits=32, seed=12
        )
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        row = [f"{hit_rate:8.2f}"]
        for index in (WarpCoreHashTable(), GpuBPlusTree(), SortedArrayIndex(), RXIndex()):
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(index, workload, scale, device=RTX_4090)
            row.append(f"{cost.time_ms:8.1f}")
        print(" ".join(row))

    print(
        "\nAs the hit rate drops, RX closes in on (and overtakes) the software "
        "trees: missed keys let the BVH traversal abort early, while B+ and SA "
        "always descend to a leaf and HT probes even longer on misses."
    )


if __name__ == "__main__":
    main()
